//! # pp-sweep — parallel experiment-sweep orchestration
//!
//! *Layer 5 (sweep & service) of the five-layer workspace — see `ARCHITECTURE.md` at the
//! repository root for the layer map and the three determinism
//! invariants every layer is held to.*
//!
//! Every result in the paper's evaluation — completion times, estimate
//! errors, termination probabilities — is a *sweep*: run `T` independent
//! trials at each point of a parameter grid (protocol × population size)
//! and aggregate. This crate is the orchestration layer that executes such
//! sweeps, replacing the bespoke trial/stats/IO loops the `table_*` harness
//! binaries used to hand-roll:
//!
//! * **Declarative grids.** A [`SweepSpec`] names the experiments to run,
//!   the population sizes, the trial count, the engine policy
//!   ([`pp_engine::EngineMode`]), and the master seed — either built
//!   programmatically or parsed from a TOML/JSON spec file
//!   ([`SweepSpec::from_file`]). An experiment is a named closure
//!   ([`SweepExperiment`]) mapping `(n, derived seed, engine)` to a vector
//!   of named metric values.
//!
//! * **Seeded determinism.** Each trial's seed is derived from the master
//!   seed and the trial's *grid coordinates*
//!   (`derive_seed(derive_seed(master, point), trial)`), never from thread
//!   identity or arrival order. A crossbeam worker pool pulls `(point,
//!   trial)` tasks from a shared queue, and the aggregator stores each
//!   result in its trial-indexed slot, so the aggregated output —
//!   summaries, CSV, JSON — is **byte-identical** at 1 thread and at N
//!   threads (`crates/sweep/tests/determinism.rs` holds it to that).
//!
//! * **Streaming aggregation.** Workers push results as they finish;
//!   per-point [`pp_analysis::stats::Running`] accumulators (Welford)
//!   power live progress reporting, while the final tables use the full
//!   deterministically ordered sample for means, medians, quantiles, and
//!   normal-approximation CIs ([`pp_analysis::stats::Summary`]).
//!
//! * **Resumable runs.** With [`SweepSpec::journal`] set, every completed
//!   trial is appended to a JSONL journal keyed by a fingerprint of the
//!   spec. Re-running the same spec skips the journaled trials and
//!   produces exactly the output an uninterrupted run would have — a
//!   `n = 10⁷` sweep killed at 80% restarts at 80%, not at zero. Every
//!   journal line carries a CRC-32 of its content: a torn final line
//!   (crash mid-write) is detected by its failed checksum and dropped
//!   with a warning, while a corrupt line *before* the end — which only
//!   bit rot, not a crash, can produce — is a hard error naming the line
//!   number. A *different* spec behind the same journal path is an
//!   error, not a silent restart.
//!
//! * **Panic isolation and fault injection.** A panicking trial no
//!   longer poisons the sweep: it is caught, retried up to
//!   [`SweepSpec::max_retries`] times with backoff, and — if it keeps
//!   failing — journaled as a failed trial (re-run on the next resume)
//!   while the rest of the grid completes.
//!   [`SweepReport::failed_trials`](agg::SweepReport::failed_trials)
//!   counts the permanent failures. [`SweepSpec::fault`] (`"kill@N"`,
//!   also the `sweep --fault` flag and the engine-level `PP_FAULT`
//!   variable) arms the deterministic fault-injection harness used by CI
//!   to prove that kill + resume reproduces an uninterrupted run byte
//!   for byte.
//!
//! * **Reduced-trials CI knob.** The `PP_SWEEP_TRIALS` environment
//!   variable caps the trial count of any sweep (mirroring the equivalence
//!   suites' `PP_EQ_TRIALS`), so CI smoke-runs the full harness binaries
//!   on every push without paying for publication-quality sample sizes.
//!
//! ## Example
//!
//! ```
//! use pp_sweep::{run_sweep, SweepExperiment, SweepSpec};
//!
//! let mut spec = SweepSpec::new("quickstart", vec![1_000, 2_000], 8);
//! spec.master_seed = 42;
//! spec.threads = 2;
//! let experiments = vec![SweepExperiment::new("epidemic", &["time"], |ctx| {
//!     // The spec's engine policy reaches the trial via `.mode(ctx.engine)`.
//!     use pp_engine::epidemic::InfectionEpidemic;
//!     use pp_engine::simulation::{count_of, Simulation};
//!     let n = ctx.n;
//!     let (out, _) = Simulation::count_builder(InfectionEpidemic)
//!         .config([(false, n - 1), (true, 1)])
//!         .seed(ctx.seed)
//!         .mode(ctx.engine)
//!         .check_every((n / 10).max(1))
//!         .until(move |view| count_of(view, &true) == n)
//!         .run();
//!     vec![out.time]
//! })];
//! let report = run_sweep(&spec, &experiments).unwrap();
//! let point = report.point("epidemic", 1_000);
//! assert_eq!(point.trials.len(), 8);
//! // One-way epidemics complete in ~2 ln n parallel time.
//! assert!(point.summary("time").mean < 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod emit;
pub mod journal;
pub mod json;
pub mod run;
pub mod spec;
pub mod trials;

pub use agg::{PointResult, SweepReport, TrialRecord};
pub use run::{
    grid_fingerprint, grid_total_trials, merge_journals, run_sweep, run_sweep_shard,
    run_sweep_with, RunHooks, Shard, SweepError, SweepExperiment, TrialCtx, TrialEvent,
};
pub use spec::SweepSpec;
pub use trials::{run_trials, run_trials_threaded, TrialOutcome};
