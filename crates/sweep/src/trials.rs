//! Ad-hoc trial fan-out: run many independent seeded trials, optionally in
//! parallel.
//!
//! This is the light-weight complement to [`crate::run_sweep`], retired
//! here from `pp_engine::runner` now that all trial parallelism lives in
//! the sweep orchestration layer. Harness binaries whose measurement does
//! not (yet) fit the experiment registry — multi-protocol comparisons,
//! derived statistics over raw outcome structs — fan their trials out
//! through these functions; everything registry-shaped should define a
//! [`crate::SweepExperiment`] and go through [`crate::run_sweep`] instead
//! (journaling, resume, and spec files come for free there).
//!
//! Seeding matches the sweep runner's discipline: one decorrelated seed
//! per trial, derived from the base seed and the trial index — never from
//! thread identity or arrival order — so results are identical at any
//! thread count.

use parking_lot::Mutex;

use pp_engine::rng::derive_seed;

/// Result of one trial together with its index and derived seed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome<T> {
    /// Trial index in `0..trials`.
    pub trial: usize,
    /// The seed the trial ran with.
    pub seed: u64,
    /// The trial's result.
    pub value: T,
}

/// Runs `trials` independent trials sequentially.
///
/// `f` receives `(trial_index, derived_seed)` and returns the trial result.
/// Results are returned in trial order.
pub fn run_trials<T>(
    base_seed: u64,
    trials: usize,
    mut f: impl FnMut(usize, u64) -> T,
) -> Vec<TrialOutcome<T>> {
    (0..trials)
        .map(|i| {
            let seed = derive_seed(base_seed, i as u64);
            TrialOutcome {
                trial: i,
                seed,
                value: f(i, seed),
            }
        })
        .collect()
}

/// Runs `trials` independent trials across `threads` worker threads.
///
/// Results are returned sorted by trial index, and are identical to
/// [`run_trials`] with the same `base_seed` (seeding is per-trial, not
/// per-thread). `f` must be `Sync` because multiple workers call it
/// concurrently.
pub fn run_trials_threaded<T: Send>(
    base_seed: u64,
    trials: usize,
    threads: usize,
    f: impl Fn(usize, u64) -> T + Sync,
) -> Vec<TrialOutcome<T>> {
    assert!(threads >= 1, "need at least one thread");
    if threads == 1 || trials <= 1 {
        return run_trials(base_seed, trials, &f);
    }
    let next = Mutex::new(0usize);
    let results: Mutex<Vec<Option<TrialOutcome<T>>>> =
        Mutex::new((0..trials).map(|_| None).collect());
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(trials) {
            scope.spawn(|_| loop {
                let i = {
                    let mut guard = next.lock();
                    let i = *guard;
                    if i >= trials {
                        return;
                    }
                    *guard += 1;
                    i
                };
                let seed = derive_seed(base_seed, i as u64);
                let value = f(i, seed);
                results.lock()[i] = Some(TrialOutcome {
                    trial: i,
                    seed,
                    value,
                });
            });
        }
    })
    .expect("trial worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("missing trial result"))
        .collect()
}

/// Extracts just the result values, in trial order.
pub fn values<T: Clone>(outcomes: &[TrialOutcome<T>]) -> Vec<T> {
    outcomes.iter().map(|o| o.value.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_trials_have_distinct_seeds() {
        let outcomes = run_trials(1, 50, |_, seed| seed);
        for i in 0..outcomes.len() {
            assert_eq!(outcomes[i].trial, i);
            for j in (i + 1)..outcomes.len() {
                assert_ne!(outcomes[i].seed, outcomes[j].seed);
            }
        }
    }

    #[test]
    fn threaded_matches_sequential() {
        let seq = run_trials(99, 20, |i, seed| (i, seed, seed.wrapping_mul(3)));
        let par = run_trials_threaded(99, 20, 4, |i, seed| (i, seed, seed.wrapping_mul(3)));
        assert_eq!(seq, par);
    }

    #[test]
    fn threaded_with_one_thread_matches() {
        let seq = run_trials(7, 10, |i, _| i * 2);
        let par = run_trials_threaded(7, 10, 1, |i, _| i * 2);
        assert_eq!(seq, par);
    }

    #[test]
    fn threaded_handles_more_threads_than_trials() {
        let par = run_trials_threaded(7, 3, 16, |i, _| i);
        assert_eq!(values(&par), vec![0, 1, 2]);
    }

    #[test]
    fn values_extracts_in_order() {
        let outcomes = run_trials(0, 5, |i, _| i as u64 * 10);
        assert_eq!(values(&outcomes), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn zero_trials_is_empty() {
        let outcomes = run_trials(0, 0, |_, _| 1);
        assert!(outcomes.is_empty());
    }
}
