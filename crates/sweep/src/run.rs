//! The sweep runner: a crossbeam worker pool over a seeded trial grid.
//!
//! Trials are the unit of work. The grid is flattened into `(point,
//! trial)` tasks that workers pull from a shared counter; each trial's
//! seed is derived from the master seed and the trial's grid coordinates
//! (never from thread identity or arrival order), and each result lands in
//! a trial-indexed slot. Aggregated output is therefore **bit-identical**
//! across thread counts and scheduling orders, and a journaled trial can
//! be loaded instead of re-run without anyone downstream noticing.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use pp_analysis::stats::Running;
use pp_engine::env::FaultPlan;
use pp_engine::rng::derive_seed;
use pp_engine::EngineMode;

use crate::agg::{PointResult, SweepReport, TrialRecord};
use crate::journal::{fingerprint, Journal, JournalEntry};
use crate::spec::SweepSpec;

/// Everything a trial closure needs: its grid coordinates, derived seed,
/// and the sweep's engine policy.
#[derive(Debug, Clone, Copy)]
pub struct TrialCtx {
    /// Population size of this grid point.
    pub n: u64,
    /// Trial index in `0..trials`.
    pub trial: usize,
    /// Seed derived from `(master_seed, point, trial)`.
    pub seed: u64,
    /// Engine policy from the spec ([`SweepSpec::engine`]).
    pub engine: EngineMode,
}

/// One trial landing in its result slot — freshly executed by a worker or
/// replayed from the journal. Borrowed views into the runner's state; copy
/// out what you need.
#[derive(Debug, Clone, Copy)]
pub struct TrialEvent<'a> {
    /// Grid-point index (canonical experiment-major order).
    pub point: usize,
    /// Experiment name of the point.
    pub experiment: &'a str,
    /// Population size of the point.
    pub n: u64,
    /// Trial index in `0..trials`.
    pub trial: usize,
    /// The trial's derived seed.
    pub seed: u64,
    /// Metric values, in the experiment's declared order.
    pub values: &'a [f64],
    /// Nonzero telemetry counters the trial recorded.
    pub counters: &'a [(String, u64)],
    /// Whether the trial was replayed from the journal instead of run.
    pub resumed: bool,
    /// Trials landed so far (including this one).
    pub completed: usize,
    /// Total trials in the grid.
    pub total: usize,
}

/// Observation and control hooks for [`run_sweep_with`].
///
/// `on_trial` fires under the runner's lock for every trial that lands —
/// journal replays included (`resumed = true`) — so implementations must
/// be cheap and non-blocking (push to a channel, bump an accumulator).
/// `cancel`, once set, stops workers from picking up new trials; trials
/// already in flight finish and are journaled, so the journal remains a
/// valid resume point — the run then returns a "cancelled" error.
#[derive(Default, Clone, Copy)]
pub struct RunHooks<'a> {
    /// Called for every trial that lands in its slot.
    pub on_trial: Option<&'a (dyn Fn(&TrialEvent<'_>) + Sync)>,
    /// Checked at every trial boundary; `true` drains the worker pool.
    pub cancel: Option<&'a AtomicBool>,
}

impl std::fmt::Debug for RunHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHooks")
            .field("on_trial", &self.on_trial.map(|_| ".."))
            .field("cancel", &self.cancel)
            .finish()
    }
}

/// A named experiment: a closure mapping a [`TrialCtx`] to one value per
/// declared metric.
///
/// Return NaN for a metric a trial did not produce (e.g. the termination
/// time of a run that never terminated); summaries skip missing values.
pub struct SweepExperiment {
    name: String,
    metrics: Vec<String>,
    max_trials: Option<usize>,
    engine_aware: bool,
    #[allow(clippy::type_complexity)]
    run: Box<dyn Fn(&TrialCtx) -> Vec<f64> + Send + Sync>,
}

impl SweepExperiment {
    /// Defines an experiment producing the given metrics (in order).
    pub fn new(
        name: impl Into<String>,
        metrics: &[&str],
        run: impl Fn(&TrialCtx) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        let metrics: Vec<String> = metrics.iter().map(|&m| m.into()).collect();
        assert!(
            !metrics.is_empty(),
            "an experiment needs at least one metric"
        );
        Self {
            name: name.into(),
            metrics,
            max_trials: None,
            engine_aware: false,
            run: Box::new(run),
        }
    }

    /// Caps this experiment's trials below the spec's count — for
    /// experiments whose single trial is orders of magnitude more
    /// expensive than the rest of the grid (e.g. the `Ω(n)`-time exact
    /// baselines riding along in an `O(log² n)` sweep).
    pub fn with_max_trials(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "max_trials must be at least 1");
        self.max_trials = Some(cap);
        self
    }

    /// Declares that the closure honors [`TrialCtx::engine`]. Sweeps whose
    /// spec pins a non-Auto engine refuse experiments without this marker
    /// — otherwise an `engine = "sequential"` vs `engine = "batched"`
    /// comparison would silently produce identical numbers for experiments
    /// that ignore the policy.
    pub fn with_engine_hook(mut self) -> Self {
        self.engine_aware = true;
        self
    }

    /// Whether the experiment declared that it honors the engine policy.
    pub fn is_engine_aware(&self) -> bool {
        self.engine_aware
    }

    /// Experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared metric names.
    pub fn metrics(&self) -> &[String] {
        &self.metrics
    }
}

impl std::fmt::Debug for SweepExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepExperiment")
            .field("name", &self.name)
            .field("metrics", &self.metrics)
            .field("max_trials", &self.max_trials)
            .finish_non_exhaustive()
    }
}

/// A sweep failure: spec/journal mismatches, journal IO, or an experiment
/// returning the wrong number of metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError(pub String);

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep failed: {}", self.0)
    }
}

impl std::error::Error for SweepError {}

impl From<String> for SweepError {
    fn from(msg: String) -> Self {
        Self(msg)
    }
}

/// A `k/N` shard assignment for distributed sweep production: the shard
/// runs only the trials with `trial % N == k`, journaling them for a
/// later `merge_journals` on the full spec. Shards of one spec partition
/// the grid exactly (every trial is covered by exactly one shard), and
/// each trial's seed is a pure function of its grid coordinates, so the
/// merged report is byte-identical to a single-machine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index, in `0..count`.
    pub index: usize,
    /// Total number of shards the grid is split across.
    pub count: usize,
}

impl Shard {
    /// A validated shard assignment (`index < count`, `count ≥ 1`).
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shard(s) (expected 0..{count})"
            ));
        }
        Ok(Self { index, count })
    }

    /// Whether this shard is responsible for `trial`.
    fn covers(&self, trial: usize) -> bool {
        trial % self.count == self.index
    }
}

impl std::str::FromStr for Shard {
    type Err = String;

    /// Parses the CLI form `k/N` (e.g. `0/2`, `1/2`).
    fn from_str(s: &str) -> Result<Self, String> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("invalid shard {s:?} (expected k/N, e.g. 0/2)"))?;
        let parse = |part: &str| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid shard {s:?} (expected k/N with unsigned integers)"))
        };
        Shard::new(parse(index)?, parse(count)?)
    }
}

/// One grid point: an experiment at a population size.
struct GridPoint {
    exp: usize,
    n: u64,
    trials: usize,
}

/// Flattens the grid (experiments × sizes, trial counts capped per
/// experiment) in the canonical point order shared by the runner, the
/// journal, and `--merge`.
fn build_points(spec: &SweepSpec, experiments: &[SweepExperiment]) -> Vec<GridPoint> {
    let trials = spec.effective_trials();
    let mut points = Vec::new();
    for (exp_idx, exp) in experiments.iter().enumerate() {
        for &n in &spec.sizes {
            points.push(GridPoint {
                exp: exp_idx,
                n,
                trials: exp.max_trials.map_or(trials, |cap| trials.min(cap)),
            });
        }
    }
    points
}

/// Fingerprint of the full grid — spec fields plus the experiment names,
/// metric lists, and trial caps. Journals carry it in their header: any
/// change to the grid makes old journals unresumable (refused, not
/// silently mixed in), and `sweep --merge` refuses shards whose
/// fingerprint differs.
pub fn grid_fingerprint(spec: &SweepSpec, experiments: &[SweepExperiment]) -> u64 {
    fingerprint(
        [
            spec.name.clone(),
            spec.master_seed.to_string(),
            format!("{:?}", spec.engine),
            format!("{:?}", spec.sizes),
            spec.effective_trials().to_string(),
        ]
        .into_iter()
        // Trajectory-changing knob: the parallel-fill *discipline* (not
        // the worker count) alters trial trajectories, so its enabled-ness
        // is grid identity. Chained only when on, so journals recorded
        // before the knob existed keep their fingerprints.
        .chain(
            spec.effective_fill_threads()
                .map(|_| "parallel_fill=on".to_string()),
        )
        .chain(experiments.iter().flat_map(|e| {
            [
                e.name.clone(),
                e.metrics.join(","),
                format!("{:?}", e.max_trials),
            ]
        })),
    )
}

/// Total trials across the grid (experiments × sizes, per-experiment
/// caps applied) — what a fresh run of `spec` would execute, and the
/// denominator for progress reporting over [`TrialEvent::completed`].
pub fn grid_total_trials(spec: &SweepSpec, experiments: &[SweepExperiment]) -> usize {
    build_points(spec, experiments)
        .iter()
        .map(|p| p.trials)
        .sum()
}

/// Validates one journaled trial against the current grid: known point,
/// in-range trial index, re-derivable seed, declared metric count
/// (skipped for failed-trial records, which carry no values).
fn validate_entry(
    spec: &SweepSpec,
    points: &[GridPoint],
    experiments: &[SweepExperiment],
    entry: &JournalEntry,
) -> Result<(), SweepError> {
    let gp = points
        .get(entry.point)
        .ok_or_else(|| SweepError(format!("journal entry for unknown point {}", entry.point)))?;
    if entry.trial >= gp.trials {
        return Err(SweepError(format!(
            "journal entry for trial {} of point {}, which has only {} trials",
            entry.trial, entry.point, gp.trials
        )));
    }
    let expected_seed = trial_seed(spec.master_seed, entry.point, entry.trial);
    if entry.seed != expected_seed {
        return Err(SweepError(format!(
            "journal seed {:#x} does not match the derived seed {expected_seed:#x} \
             for point {} trial {}",
            entry.seed, entry.point, entry.trial
        )));
    }
    if entry.failed.is_none() && entry.values.len() != experiments[gp.exp].metrics.len() {
        return Err(SweepError(format!(
            "journal entry for point {} has {} metric values, experiment {:?} declares {}",
            entry.point,
            entry.values.len(),
            experiments[gp.exp].name,
            experiments[gp.exp].metrics.len()
        )));
    }
    Ok(())
}

/// Merges the trial journals at `sources` — shards of one grid produced on
/// different machines — into the spec's own journal, so the next
/// [`run_sweep`] resumes from their union and produces a single report.
///
/// Every shard must carry the spec's exact grid fingerprint (name, master
/// seed, engine, sizes, trials, experiment definitions); a mismatched
/// shard is refused before anything is written, as is any entry that
/// fails seed re-derivation. Duplicate `(point, trial)` entries collapse
/// to the first occurrence (shards of a deterministic grid agree anyway).
/// Returns the number of distinct trials available after the merge.
pub fn merge_journals(
    spec: &SweepSpec,
    experiments: &[SweepExperiment],
    sources: &[std::path::PathBuf],
) -> Result<usize, SweepError> {
    let target = spec.journal.as_ref().ok_or_else(|| {
        SweepError(
            "--merge needs a journal path: set `journal = ...` in the spec so the merged \
             trials have somewhere to live"
                .into(),
        )
    })?;
    if sources.is_empty() {
        return Err(SweepError("--merge needs at least one journal file".into()));
    }
    let points = build_points(spec, experiments);
    let fp = grid_fingerprint(spec, experiments);
    // Validate every shard fully before touching the target journal.
    let mut shard_entries = Vec::new();
    for path in sources {
        let entries = crate::journal::read_entries(path, fp).map_err(SweepError)?;
        for entry in &entries {
            validate_entry(spec, &points, experiments, entry)
                .map_err(|e| SweepError(format!("{}: {}", path.display(), e.0)))?;
        }
        shard_entries.push(entries);
    }
    let (mut journal, existing) =
        Journal::open(target, &spec.name, spec.master_seed, fp).map_err(SweepError)?;
    let mut seen: std::collections::BTreeSet<(usize, usize)> = existing
        .iter()
        .filter(|entry| entry.failed.is_none())
        .map(|entry| (entry.point, entry.trial))
        .collect();
    for entries in shard_entries {
        for entry in entries {
            // Failed-trial records are not results; merging them would
            // only shadow a successful re-run from another shard.
            if entry.failed.is_some() {
                continue;
            }
            if seen.insert((entry.point, entry.trial)) {
                let gp = &points[entry.point];
                journal
                    .record(&experiments[gp.exp].name, gp.n, &entry)
                    .map_err(SweepError)?;
            }
        }
    }
    Ok(seen.len())
}

/// Shared worker state, guarded by one mutex (trials are orders of
/// magnitude more expensive than the bookkeeping inside the lock).
struct RunState {
    /// Per point, per trial: the completed record.
    slots: Vec<Vec<Option<TrialRecord>>>,
    /// Per point, per metric: streaming stats for progress reporting.
    progress: Vec<Vec<Running>>,
    /// Per point: trials still outstanding.
    remaining: Vec<usize>,
    journal: Option<Journal>,
    /// First failure; workers drain without starting new trials once set.
    error: Option<String>,
    /// Trials that panicked through all retries: one description each.
    /// These do not stop the sweep — the report carries the count.
    failures: Vec<String>,
    /// Trials completed by THIS run (not resumed from the journal) — the
    /// spec-level fault plan counts these.
    fresh: usize,
    /// Spec-level fault plan: abort the process (as a SIGKILL would)
    /// after `kill_at` freshly completed trials.
    fault: Option<FaultPlan>,
    completed: usize,
    total: usize,
}

impl RunState {
    /// Records one finished trial (from a worker or the journal).
    #[allow(clippy::too_many_arguments)] // internal plumbing, one call site per source
    fn record(
        &mut self,
        points: &[GridPoint],
        experiments: &[SweepExperiment],
        hooks: &RunHooks<'_>,
        point: usize,
        record: TrialRecord,
        journal_it: bool,
        quiet: bool,
    ) {
        let gp = &points[point];
        let exp = &experiments[gp.exp];
        if self.slots[point][record.trial].is_some() {
            return; // duplicate journal line: first one wins
        }
        for (metric_idx, &v) in record.values.iter().enumerate() {
            if !v.is_nan() {
                self.progress[point][metric_idx].push(v);
            }
        }
        if journal_it {
            if let Some(journal) = &mut self.journal {
                if let Err(e) = journal.record(
                    &exp.name,
                    gp.n,
                    &JournalEntry {
                        point,
                        trial: record.trial,
                        seed: record.seed,
                        values: record.values.clone(),
                        failed: None,
                        counters: record.counters.clone(),
                    },
                ) {
                    self.error.get_or_insert(e);
                }
            }
            self.fresh += 1;
            if let Some(plan) = self.fault {
                if self.fresh as u64 >= plan.kill_at {
                    // Deterministic fault injection: die like a SIGKILL
                    // would — no unwinding, no destructors, nonzero exit.
                    // The trial just recorded is already flushed to the
                    // journal, so a resume picks up exactly after it.
                    eprintln!(
                        "[sweep] fault plan: aborting after {} completed trials (kill@{})",
                        self.fresh, plan.kill_at
                    );
                    std::process::abort();
                }
            }
        }
        let trial = record.trial;
        self.remaining[point] -= 1;
        self.completed += 1;
        if let Some(on_trial) = hooks.on_trial {
            on_trial(&TrialEvent {
                point,
                experiment: &exp.name,
                n: gp.n,
                trial,
                seed: record.seed,
                values: &record.values,
                counters: &record.counters,
                resumed: !journal_it,
                completed: self.completed,
                total: self.total,
            });
        }
        self.slots[point][trial] = Some(record);
        if self.remaining[point] == 0 && !quiet {
            let stats: Vec<String> = exp
                .metrics
                .iter()
                .zip(&self.progress[point])
                .map(|(m, r)| format!("{m} {:.4} ±{:.4}", r.mean(), r.ci95_half_width()))
                .collect();
            eprintln!(
                "[sweep] {} n={}: {} trials done ({}) [{}/{} total]",
                exp.name,
                gp.n,
                gp.trials,
                stats.join(", "),
                self.completed,
                self.total,
            );
        }
    }

    /// Records a trial that panicked through all retries: a failed-trial
    /// line in the journal (re-run on resume, never replayed as a result)
    /// and a description for the end-of-sweep summary. The sweep itself
    /// continues.
    fn record_failure(
        &mut self,
        points: &[GridPoint],
        experiments: &[SweepExperiment],
        point: usize,
        trial: usize,
        seed: u64,
        message: String,
    ) {
        let gp = &points[point];
        let exp = &experiments[gp.exp];
        if let Some(journal) = &mut self.journal {
            if let Err(e) = journal.record(
                &exp.name,
                gp.n,
                &JournalEntry {
                    point,
                    trial,
                    seed,
                    values: Vec::new(),
                    failed: Some(message.clone()),
                    counters: Vec::new(),
                },
            ) {
                self.error.get_or_insert(e);
            }
        }
        eprintln!(
            "[sweep] {} n={} trial {trial} FAILED permanently: {message}",
            exp.name, gp.n
        );
        self.failures
            .push(format!("{} n={} trial {trial}: {message}", exp.name, gp.n));
        self.remaining[point] -= 1;
    }
}

/// Executes `spec` over `experiments` and returns the aggregated report.
///
/// The grid is experiments × [`SweepSpec::sizes`]; each point runs
/// [`SweepSpec::effective_trials`] trials (further capped per experiment
/// by [`SweepExperiment::with_max_trials`]) on
/// [`SweepSpec::worker_threads`] workers. With a journal configured,
/// already-recorded trials are loaded instead of re-run.
///
/// A trial that panics is retried up to [`SweepSpec::max_retries`] times
/// (with exponential backoff) and then recorded as failed — it does not
/// abort the sweep. Failed trials are absent from their point's records,
/// and the report carries their count in
/// [`SweepReport::failed_trials`].
pub fn run_sweep(
    spec: &SweepSpec,
    experiments: &[SweepExperiment],
) -> Result<SweepReport, SweepError> {
    run_sweep_with(spec, experiments, &RunHooks::default())
}

/// [`run_sweep`] with observation/control hooks: a per-trial progress
/// callback and a cooperative cancellation flag (see [`RunHooks`]). The
/// service tier drives this; the plain CLI path is `run_sweep` with
/// default (inert) hooks — the two produce byte-identical reports.
pub fn run_sweep_with(
    spec: &SweepSpec,
    experiments: &[SweepExperiment],
    hooks: &RunHooks<'_>,
) -> Result<SweepReport, SweepError> {
    let (points, slots, resumed, failed) = execute(spec, experiments, None, hooks)?;
    let results = points
        .iter()
        .zip(slots)
        .map(|(gp, slots)| PointResult {
            experiment: experiments[gp.exp].name.clone(),
            n: gp.n,
            metrics: experiments[gp.exp].metrics.clone(),
            trials: slots.into_iter().flatten().collect(),
        })
        .collect();
    Ok(SweepReport {
        name: spec.name.clone(),
        master_seed: spec.master_seed,
        points: results,
        resumed_trials: resumed,
        failed_trials: failed,
    })
}

/// Executes only this shard's slice of the grid (`trial % N == k`),
/// journaling every completed trial — the producer half of a distributed
/// sweep, paired with [`merge_journals`] on the collecting machine. The
/// spec **must** carry a journal path (a shard's results live nowhere
/// else). Returns the number of this shard's trials recorded in the
/// journal after the run (including ones resumed from it).
pub fn run_sweep_shard(
    spec: &SweepSpec,
    experiments: &[SweepExperiment],
    shard: Shard,
) -> Result<usize, SweepError> {
    if spec.journal.is_none() {
        return Err(SweepError(
            "a shard run needs a journal path (set `journal = ...` in the spec or let the CLI \
             derive one): its trials have nowhere else to live"
                .into(),
        ));
    }
    let (points, slots, _, _) = execute(spec, experiments, Some(shard), &RunHooks::default())?;
    Ok(points
        .iter()
        .enumerate()
        .map(|(p, gp)| {
            (0..gp.trials)
                .filter(|&t| shard.covers(t) && slots[p][t].is_some())
                .count()
        })
        .sum())
}

/// The shared grid executor: validation, journal resume, and the worker
/// pool, over all tasks (`shard` = `None`) or one shard's slice. Returns
/// the grid, the per-point trial slots (fully populated only for the
/// covered tasks), the number of trials resumed from the journal, and
/// the number of trials that failed permanently.
#[allow(clippy::type_complexity)]
fn execute(
    spec: &SweepSpec,
    experiments: &[SweepExperiment],
    shard: Option<Shard>,
    hooks: &RunHooks<'_>,
) -> Result<(Vec<GridPoint>, Vec<Vec<Option<TrialRecord>>>, usize, usize), SweepError> {
    if experiments.is_empty() {
        return Err(SweepError("a sweep needs at least one experiment".into()));
    }
    if spec.sizes.is_empty() {
        return Err(SweepError(
            "a sweep needs at least one population size".into(),
        ));
    }
    if spec.engine != EngineMode::Auto {
        let deaf: Vec<&str> = experiments
            .iter()
            .filter(|e| !e.engine_aware)
            .map(|e| e.name.as_str())
            .collect();
        if !deaf.is_empty() {
            return Err(SweepError(format!(
                "the spec pins engine = {:?}, but these experiments do not honor the engine \
                 policy (no engine-selection hook): {}; drop the engine setting or restrict the \
                 sweep to engine-aware experiments",
                spec.engine,
                deaf.join(", ")
            )));
        }
    }
    let trials = spec.effective_trials();
    let points = build_points(spec, experiments);

    // Fingerprint the full grid: any change to it makes old journals
    // unresumable (refused, not silently mixed in).
    let fp = grid_fingerprint(spec, experiments);

    let (journal, journaled) = match &spec.journal {
        Some(path) => {
            let (journal, entries) = Journal::open(path, &spec.name, spec.master_seed, fp)?;
            (Some(journal), entries)
        }
        None => (None, Vec::new()),
    };

    let fault = match &spec.fault {
        Some(f) => Some(pp_engine::env::parse_fault(f).map_err(SweepError)?),
        None => None,
    };

    let total: usize = points.iter().map(|p| p.trials).sum();
    let mut state = RunState {
        slots: points.iter().map(|p| vec![None; p.trials]).collect(),
        progress: points
            .iter()
            .map(|p| vec![Running::new(); experiments[p.exp].metrics.len()])
            .collect(),
        remaining: points.iter().map(|p| p.trials).collect(),
        journal,
        error: None,
        failures: Vec::new(),
        fresh: 0,
        fault,
        completed: 0,
        total,
    };

    // Replay the journal into the slots, validating every entry against
    // the current grid. Failed-trial records are validated but not
    // replayed — their trials run again.
    let mut resumed = 0usize;
    for entry in journaled {
        validate_entry(spec, &points, experiments, &entry)?;
        if entry.failed.is_some() {
            continue;
        }
        if state.slots[entry.point][entry.trial].is_none() {
            resumed += 1;
        }
        state.record(
            &points,
            experiments,
            hooks,
            entry.point,
            TrialRecord {
                trial: entry.trial,
                seed: entry.seed,
                values: entry.values,
                counters: entry.counters,
            },
            false,
            true,
        );
    }

    let tasks: Vec<(usize, usize)> = points
        .iter()
        .enumerate()
        .flat_map(|(p, gp)| (0..gp.trials).map(move |t| (p, t)))
        .filter(|&(p, t)| state.slots[p][t].is_none() && shard.is_none_or(|s| s.covers(t)))
        .collect();
    let threads = spec.worker_threads().min(tasks.len()).max(1);
    // Keep `trial workers × fill workers` at the machine: parallel batch
    // fills inside trials share cores with the trial pool. The cap clamps
    // worker counts only — never the fill discipline — so it is
    // trajectory-neutral.
    pp_engine::parallel::set_fill_thread_cap(
        (pp_engine::parallel::machine_parallelism() / threads as u64).max(1),
    );
    eprintln!(
        "[sweep] {:?}: {} points × up to {} trials = {} tasks on {} threads{}{}",
        spec.name,
        points.len(),
        trials,
        tasks.len(),
        threads,
        match shard {
            Some(s) => format!(" (shard {}/{})", s.index, s.count),
            None => String::new(),
        },
        if resumed > 0 {
            format!(" ({resumed} resumed from journal)")
        } else {
            String::new()
        }
    );

    let state = Mutex::new(state);
    let next = AtomicUsize::new(0);
    let worker = |_: ()| loop {
        // Cooperative cancellation, checked at trial boundaries only:
        // the trial in flight finishes and is journaled first.
        if hooks.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            return;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= tasks.len() {
            return;
        }
        let (point, trial) = tasks[i];
        let gp = &points[point];
        let exp = &experiments[gp.exp];
        let ctx = TrialCtx {
            n: gp.n,
            trial,
            seed: trial_seed(spec.master_seed, point, trial),
            engine: spec.engine,
        };
        // Panic isolation: one panicking trial must not poison the
        // sweep. Retry with exponential backoff up to the spec's cap,
        // then record the failure and move on.
        let attempts = spec.max_retries + 1;
        let mut outcome: Result<(Vec<f64>, Vec<(String, u64)>), String> = Err(String::new());
        // The spec's per-job fill-thread override, installed ambiently
        // around the attempts (mirroring the ambient metrics registry) so
        // every engine the trial builds picks it up; `None` inherits the
        // `PP_THREADS` environment knob. Restored below — the inline
        // single-thread path runs on the caller's thread.
        let fill_prev = spec
            .fill_threads
            .map(|k| pp_engine::parallel::install_fill_threads(Some(k)));
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(10u64 << (attempt - 1).min(6)));
            }
            // A fresh per-trial registry, installed as the ambient one so
            // any engine the closure builds records into it without the
            // experiment signature knowing about telemetry. Fresh per
            // attempt: a panicked attempt's counters must not leak into
            // its retry. Hooks are observation-only, so the trajectory —
            // and therefore `values` — is byte-identical either way.
            let metrics = pp_telemetry::Metrics::new();
            match catch_unwind(AssertUnwindSafe(|| {
                let _ambient = metrics.install_current();
                (exp.run)(&ctx)
            })) {
                Ok(values) => {
                    let counters = metrics
                        .nonzero_counters()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect();
                    outcome = Ok((values, counters));
                    break;
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    eprintln!(
                        "[sweep] {} n={} trial {trial} panicked (attempt {}/{attempts}): {msg}",
                        exp.name,
                        gp.n,
                        attempt + 1,
                    );
                    outcome = Err(msg);
                }
            }
        }
        if let Some(prev) = fill_prev {
            pp_engine::parallel::install_fill_threads(prev);
        }
        let mut guard = state.lock();
        if guard.error.is_some() {
            return; // drain: stop picking up work after a failure
        }
        match outcome {
            Ok((values, counters)) => {
                if values.len() != exp.metrics.len() {
                    guard.error.get_or_insert(format!(
                        "experiment {:?} returned {} values for {} declared metrics",
                        exp.name,
                        values.len(),
                        exp.metrics.len()
                    ));
                    return;
                }
                guard.record(
                    &points,
                    experiments,
                    hooks,
                    point,
                    TrialRecord {
                        trial,
                        seed: ctx.seed,
                        values,
                        counters,
                    },
                    true,
                    false,
                );
            }
            Err(msg) => {
                guard.record_failure(&points, experiments, point, trial, ctx.seed, msg);
            }
        }
    };
    if threads == 1 || tasks.len() <= 1 {
        worker(());
    } else {
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        })
        .expect("sweep worker pool failed");
    }

    let state = state.into_inner();
    if let Some(error) = state.error {
        return Err(SweepError(error));
    }
    if hooks.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
        && state.remaining.iter().any(|&r| r > 0)
    {
        return Err(SweepError(
            "cancelled at a trial boundary; completed trials are journaled, so the journal \
             is a valid resume point"
                .into(),
        ));
    }
    if !state.failures.is_empty() {
        eprintln!(
            "[sweep] {} trial(s) FAILED permanently:",
            state.failures.len()
        );
        for failure in &state.failures {
            eprintln!("[sweep]   {failure}");
        }
    }
    Ok((points, state.slots, resumed, state.failures.len()))
}

/// Best-effort human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The canonical per-trial seed: a pure function of the master seed and
/// the trial's grid coordinates.
fn trial_seed(master_seed: u64, point: usize, trial: usize) -> u64 {
    derive_seed(derive_seed(master_seed, point as u64), trial as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_experiment() -> SweepExperiment {
        // A deterministic function of (n, seed): distinguishable per trial.
        SweepExperiment::new("toy", &["value", "seed_lo"], |ctx| {
            vec![
                ctx.n as f64 + ctx.trial as f64 / 100.0,
                (ctx.seed % 1000) as f64,
            ]
        })
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let mut spec = SweepSpec::new("t", vec![100, 200], 9);
        spec.master_seed = 5;
        spec.threads = 1;
        let a = run_sweep(&spec, &[toy_experiment()]).unwrap();
        spec.threads = 7;
        let b = run_sweep(&spec, &[toy_experiment()]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.point("toy", 100).trials.len(), 9);
    }

    #[test]
    fn seeds_are_grid_derived_and_distinct() {
        let spec = SweepSpec::new("t", vec![100, 200], 5);
        let report = run_sweep(&spec, &[toy_experiment()]).unwrap();
        let mut seeds: Vec<u64> = report
            .points
            .iter()
            .flat_map(|p| p.trials.iter().map(|t| t.seed))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10, "all 2×5 trial seeds are distinct");
    }

    #[test]
    fn max_trials_caps_one_experiment_only() {
        let spec = SweepSpec::new("t", vec![100], 8);
        let experiments = vec![
            toy_experiment(),
            SweepExperiment::new("slow", &["x"], |ctx| vec![ctx.seed as f64]).with_max_trials(3),
        ];
        let report = run_sweep(&spec, &experiments).unwrap();
        assert_eq!(report.point("toy", 100).trials.len(), 8);
        assert_eq!(report.point("slow", 100).trials.len(), 3);
    }

    #[test]
    fn panicking_trial_does_not_poison_the_sweep() {
        let mut spec = SweepSpec::new("t", vec![100], 5);
        spec.threads = 2;
        let exploding = SweepExperiment::new("exploding", &["x"], |ctx| {
            if ctx.trial == 2 {
                panic!("injected trial panic");
            }
            vec![ctx.n as f64]
        });
        let report = run_sweep(&spec, &[exploding]).unwrap();
        assert_eq!(report.failed_trials, 1);
        let point = report.point("exploding", 100);
        assert_eq!(point.trials.len(), 4);
        assert!(point.trials.iter().all(|t| t.trial != 2));
    }

    #[test]
    fn retries_recover_flaky_trials() {
        use std::sync::atomic::AtomicUsize;
        let mut spec = SweepSpec::new("t", vec![100], 4);
        spec.threads = 1;
        spec.max_retries = 2;
        let attempts = AtomicUsize::new(0);
        let flaky = SweepExperiment::new("flaky", &["x"], move |ctx| {
            // Trial 1 panics on its first attempt only.
            if ctx.trial == 1 && attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient failure");
            }
            vec![ctx.trial as f64]
        });
        let report = run_sweep(&spec, &[flaky]).unwrap();
        assert_eq!(report.failed_trials, 0);
        assert_eq!(report.point("flaky", 100).trials.len(), 4);
    }

    #[test]
    fn failed_trials_are_rerun_on_resume() {
        use std::sync::atomic::AtomicBool;
        let dir = std::env::temp_dir().join("pp-sweep-run-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join(format!("rerun-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&journal);
        let mut spec = SweepSpec::new("t", vec![100], 3);
        spec.threads = 1;
        spec.journal = Some(journal.clone());
        let healed = std::sync::Arc::new(AtomicBool::new(false));
        let experiment = || {
            let healed = healed.clone();
            SweepExperiment::new("sometimes", &["x"], move |ctx| {
                if ctx.trial == 1 && !healed.load(Ordering::Relaxed) {
                    panic!("fails until healed");
                }
                vec![ctx.trial as f64]
            })
        };
        let first = run_sweep(&spec, &[experiment()]).unwrap();
        assert_eq!(first.failed_trials, 1);
        assert_eq!(first.point("sometimes", 100).trials.len(), 2);
        // The failure is journaled but must be re-run, not replayed.
        healed.store(true, Ordering::Relaxed);
        let second = run_sweep(&spec, &[experiment()]).unwrap();
        assert_eq!(second.failed_trials, 0);
        assert_eq!(second.resumed_trials, 2);
        assert_eq!(second.point("sometimes", 100).trials.len(), 3);
        std::fs::remove_file(&journal).unwrap();
    }

    #[test]
    fn trial_counters_flow_into_report_and_journal() {
        use pp_telemetry::{Counter, Metrics};
        let dir = std::env::temp_dir().join("pp-sweep-run-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join(format!("counters-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&journal);
        let mut spec = SweepSpec::new("t", vec![100], 3);
        spec.threads = 2;
        spec.journal = Some(journal.clone());
        let experiment = || {
            SweepExperiment::new("counting", &["x"], |ctx| {
                // Engines pick up the runner's ambient per-trial registry
                // automatically; recording into it directly exercises the
                // same plumbing without spinning one up.
                let m = Metrics::current().expect("runner installs an ambient registry");
                m.add(Counter::Batches, ctx.trial as u64 + 1);
                vec![ctx.trial as f64]
            })
        };
        let fresh = run_sweep(&spec, &[experiment()]).unwrap();
        let point = fresh.point("counting", 100);
        assert_eq!(point.instrumented_trials(), 3);
        assert_eq!(point.counter_total("batches"), 1 + 2 + 3);
        // A resumed run replays the journaled counters, not fresh ones:
        // the aggregated points must come out identical.
        let resumed = run_sweep(&spec, &[experiment()]).unwrap();
        assert_eq!(resumed.resumed_trials, 3);
        assert_eq!(fresh.points, resumed.points);
        std::fs::remove_file(&journal).unwrap();
    }

    #[test]
    fn hooks_fire_for_fresh_and_resumed_trials() {
        let dir = std::env::temp_dir().join("pp-sweep-run-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join(format!("hooks-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&journal);
        let mut spec = SweepSpec::new("t", vec![100, 200], 3);
        spec.threads = 2;
        spec.journal = Some(journal.clone());
        let events = Mutex::new(Vec::new());
        let on_trial = |ev: &TrialEvent<'_>| {
            events
                .lock()
                .push((ev.point, ev.trial, ev.resumed, ev.completed, ev.total));
        };
        let hooks = RunHooks {
            on_trial: Some(&on_trial),
            cancel: None,
        };
        let fresh = run_sweep_with(&spec, &[toy_experiment()], &hooks).unwrap();
        {
            let mut seen = events.lock();
            assert_eq!(seen.len(), 6);
            assert!(seen.iter().all(|&(.., resumed, _, _)| !resumed));
            assert!(seen.iter().all(|&(.., total)| total == 6));
            let completed: Vec<usize> = seen.iter().map(|&(.., c, _)| c).collect();
            assert_eq!(completed.iter().max(), Some(&6));
            seen.clear();
        }
        // A resumed run replays every trial through the same hook.
        let resumed = run_sweep_with(&spec, &[toy_experiment()], &hooks).unwrap();
        assert_eq!(fresh.points, resumed.points);
        assert_eq!(resumed.resumed_trials, 6);
        let seen = events.lock();
        assert_eq!(seen.len(), 6);
        assert!(seen.iter().all(|&(.., resumed, _, _)| resumed));
        drop(seen);
        std::fs::remove_file(&journal).unwrap();
    }

    #[test]
    fn cancellation_leaves_a_resumable_journal() {
        let dir = std::env::temp_dir().join("pp-sweep-run-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join(format!("cancel-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&journal);
        let mut spec = SweepSpec::new("t", vec![100], 6);
        spec.threads = 1;
        spec.journal = Some(journal.clone());
        let cancel = AtomicBool::new(false);
        // Cancel from inside the progress hook after the second trial: the
        // flag is only honored at trial boundaries, so trials 0 and 1 land
        // in the journal and the rest never start.
        let on_trial = |ev: &TrialEvent<'_>| {
            if ev.completed == 2 {
                cancel.store(true, Ordering::Relaxed);
            }
        };
        let hooks = RunHooks {
            on_trial: Some(&on_trial),
            cancel: Some(&cancel),
        };
        let err = run_sweep_with(&spec, &[toy_experiment()], &hooks).unwrap_err();
        assert!(err.0.contains("cancelled"), "{err}");
        // The journal is a valid resume point: a plain re-run replays the
        // journaled trials and finishes the grid.
        let report = run_sweep(&spec, &[toy_experiment()]).unwrap();
        assert_eq!(report.resumed_trials, 2);
        assert_eq!(report.point("toy", 100).trials.len(), 6);
        std::fs::remove_file(&journal).unwrap();
    }

    #[test]
    fn grid_total_counts_capped_trials() {
        let spec = SweepSpec::new("t", vec![100, 200], 8);
        let experiments = vec![
            toy_experiment(),
            SweepExperiment::new("slow", &["x"], |ctx| vec![ctx.seed as f64]).with_max_trials(3),
        ];
        assert_eq!(grid_total_trials(&spec, &experiments), 2 * 8 + 2 * 3);
    }

    #[test]
    fn wrong_metric_count_is_an_error() {
        let spec = SweepSpec::new("t", vec![100], 3);
        let bad = SweepExperiment::new("bad", &["a", "b"], |_| vec![1.0]);
        let err = run_sweep(&spec, &[bad]).unwrap_err();
        assert!(err.0.contains("declared metrics"), "{err}");
    }

    #[test]
    fn empty_grid_is_an_error() {
        let spec = SweepSpec::new("t", vec![100], 3);
        assert!(run_sweep(&spec, &[]).is_err());
        let empty = SweepSpec::new("t", vec![], 3);
        assert!(run_sweep(&empty, &[toy_experiment()]).is_err());
    }
}
