//! Deterministic renderers for [`SweepReport`]: summary tables, CSV, and
//! JSON.
//!
//! Everything here is a pure function of the report (which is itself a
//! pure function of spec + master seed), so emitted bytes are identical
//! across thread counts and across resumed vs. uninterrupted runs — the
//! property the determinism suite asserts on these exact strings.

use std::fmt::Write as _;

use crate::agg::SweepReport;
use crate::json;

/// Header of the per-point summary table/CSV.
pub const SUMMARY_HEADER: [&str; 12] = [
    "experiment",
    "n",
    "metric",
    "count",
    "mean",
    "sd",
    "ci95",
    "min",
    "p10",
    "median",
    "p90",
    "max",
];

/// One row per (grid point, metric): count, mean, sd, CI half-width, and
/// the order statistics the paper's tables quote. Cells are compactly
/// formatted for terminal display; `count` is `present/trials`.
pub fn summary_rows(report: &SweepReport) -> Vec<Vec<String>> {
    rows_with(report, compact)
}

/// [`summary_rows`] at full (round-trip) float precision, for the CSV.
pub fn summary_rows_precise(report: &SweepReport) -> Vec<Vec<String>> {
    rows_with(report, |x| format!("{x}"))
}

fn rows_with(report: &SweepReport, fmt: impl Fn(f64) -> String) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for point in &report.points {
        for metric in &point.metrics {
            let values = point.values(metric);
            let mut row = vec![
                point.experiment.clone(),
                point.n.to_string(),
                metric.clone(),
                format!("{}/{}", values.len(), point.trials.len()),
            ];
            if values.is_empty() {
                row.extend(std::iter::repeat_n(
                    "-".to_string(),
                    SUMMARY_HEADER.len() - 4,
                ));
            } else {
                let s = point.summary(metric);
                row.extend([
                    fmt(s.mean),
                    fmt(s.stddev),
                    fmt(s.ci95_half_width()),
                    fmt(s.min),
                    fmt(point.quantile(metric, 0.10)),
                    fmt(s.median),
                    fmt(point.quantile(metric, 0.90)),
                    fmt(s.max),
                ]);
            }
            rows.push(row);
        }
    }
    rows
}

/// The summary as a CSV document (full float precision).
pub fn summary_csv(report: &SweepReport) -> String {
    let mut out = SUMMARY_HEADER.join(",");
    out.push('\n');
    for row in summary_rows_precise(report) {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Every trial as a CSV document: `experiment,n,trial,seed,<metrics…>`.
///
/// The metric columns are the union over experiments (in first-seen
/// order); a metric an experiment does not declare — or a trial did not
/// produce — is an empty cell.
pub fn per_trial_csv(report: &SweepReport) -> String {
    let mut metrics: Vec<&str> = Vec::new();
    for point in &report.points {
        for m in &point.metrics {
            if !metrics.contains(&m.as_str()) {
                metrics.push(m);
            }
        }
    }
    let mut out = String::from("experiment,n,trial,seed");
    for m in &metrics {
        out.push(',');
        out.push_str(m);
    }
    out.push('\n');
    for point in &report.points {
        for trial in &point.trials {
            let _ = write!(
                out,
                "{},{},{},{}",
                point.experiment, point.n, trial.trial, trial.seed
            );
            for m in &metrics {
                out.push(',');
                if let Some(idx) = point.metrics.iter().position(|pm| pm == m) {
                    let v = trial.values[idx];
                    if !v.is_nan() {
                        let _ = write!(out, "{v}");
                    }
                }
            }
            out.push('\n');
        }
    }
    out
}

/// The full report as a JSON document (summaries and per-trial values).
pub fn to_json(report: &SweepReport) -> String {
    let mut out = String::from("{\n  \"sweep\": ");
    json::write_str(&mut out, &report.name);
    // `resumed_trials` is deliberately omitted: it is run provenance, and
    // emitted documents must be identical between resumed and
    // uninterrupted runs.
    let _ = write!(
        out,
        ",\n  \"master_seed\": {},\n  \"points\": [\n",
        report.master_seed
    );
    for (i, point) in report.points.iter().enumerate() {
        out.push_str("    {\"experiment\": ");
        json::write_str(&mut out, &point.experiment);
        let _ = write!(out, ", \"n\": {}, \"metrics\": {{", point.n);
        for (j, metric) in point.metrics.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, metric);
            out.push_str(": [");
            for (k, v) in point.raw_values(metric).into_iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                json::write_f64(&mut out, v);
            }
            out.push(']');
        }
        out.push_str("}}");
        out.push_str(if i + 1 < report.points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Header of the per-point telemetry-counter table/CSV.
pub const COUNTER_HEADER: [&str; 6] = ["experiment", "n", "counter", "trials", "mean", "total"];

/// One row per (grid point, observed counter): how many trials carried a
/// telemetry snapshot, the counter's mean over those trials, and its
/// total. Points whose trials carried no counters (pre-telemetry
/// journals, `PP_METRICS=off`) produce no rows, and a derived
/// `pair_cache_hit_rate` row (hits ÷ probes, total column `-`) is
/// appended wherever the pair-outcome cache was exercised.
pub fn counter_rows(report: &SweepReport) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for point in &report.points {
        let trials = point.instrumented_trials();
        if trials == 0 {
            continue;
        }
        for name in point.counter_names() {
            rows.push(vec![
                point.experiment.clone(),
                point.n.to_string(),
                name.to_string(),
                trials.to_string(),
                format!("{}", point.counter_mean(name)),
                point.counter_total(name).to_string(),
            ]);
        }
        let hits = point.counter_total("pair_cache_hits");
        let misses = point.counter_total("pair_cache_misses");
        if hits + misses > 0 {
            rows.push(vec![
                point.experiment.clone(),
                point.n.to_string(),
                "pair_cache_hit_rate".to_string(),
                trials.to_string(),
                format!("{}", hits as f64 / (hits + misses) as f64),
                "-".to_string(),
            ]);
        }
    }
    rows
}

/// The counter aggregates as a CSV document. Empty (header only) when no
/// trial was instrumented — gate on [`SweepReport::has_counters`] to skip
/// writing the file entirely.
pub fn counters_csv(report: &SweepReport) -> String {
    let mut out = COUNTER_HEADER.join(",");
    out.push('\n');
    for row in counter_rows(report) {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Compact float formatting for terminal tables (mirrors the bench
/// harness's `fmt`).
fn compact(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{PointResult, TrialRecord};

    fn report() -> SweepReport {
        SweepReport {
            name: "s".into(),
            master_seed: 3,
            points: vec![PointResult {
                experiment: "e".into(),
                n: 50,
                metrics: vec!["time".into(), "ok".into()],
                trials: vec![
                    TrialRecord {
                        trial: 0,
                        seed: 11,
                        values: vec![1.5, 1.0],
                        counters: vec![
                            ("gc_passes".into(), 2),
                            ("pair_cache_hits".into(), 3),
                            ("pair_cache_misses".into(), 1),
                        ],
                    },
                    TrialRecord {
                        trial: 1,
                        seed: 12,
                        values: vec![f64::NAN, 0.0],
                        counters: vec![("gc_passes".into(), 4)],
                    },
                ],
            }],
            resumed_trials: 0,
            failed_trials: 0,
        }
    }

    #[test]
    fn summary_counts_present_values() {
        let rows = summary_rows(&report());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][..4], ["e", "50", "time", "1/2"].map(String::from));
        assert_eq!(rows[1][3], "2/2");
    }

    #[test]
    fn per_trial_csv_blanks_missing_values() {
        let csv = per_trial_csv(&report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "experiment,n,trial,seed,time,ok");
        assert_eq!(lines[1], "e,50,0,11,1.5,1");
        assert_eq!(lines[2], "e,50,1,12,,0");
    }

    #[test]
    fn json_is_parseable_and_preserves_nan_as_null() {
        let doc = crate::json::parse(&to_json(&report())).unwrap();
        let points = doc.get("points").unwrap().as_arr().unwrap();
        let times = points[0].get("metrics").unwrap().get("time").unwrap();
        let times = times.as_arr().unwrap();
        assert_eq!(times[0].as_f64(), Some(1.5));
        assert!(times[1].as_f64().unwrap().is_nan());
    }

    #[test]
    fn counter_rows_aggregate_per_point() {
        let csv = counters_csv(&report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], COUNTER_HEADER.join(","));
        assert_eq!(lines[1], "e,50,gc_passes,2,3,6");
        assert_eq!(lines[2], "e,50,pair_cache_hits,2,1.5,3");
        assert_eq!(lines[3], "e,50,pair_cache_misses,2,0.5,1");
        assert_eq!(lines[4], "e,50,pair_cache_hit_rate,2,0.75,-");
        assert_eq!(lines.len(), 5);
        // Uninstrumented reports produce no rows at all.
        let mut bare = report();
        for t in &mut bare.points[0].trials {
            t.counters.clear();
        }
        assert!(!bare.has_counters());
        assert_eq!(counters_csv(&bare).lines().count(), 1);
    }

    #[test]
    fn empty_metric_renders_dashes() {
        let mut r = report();
        r.points[0].trials[0].values[0] = f64::NAN;
        let rows = summary_rows(&r);
        assert_eq!(rows[0][4], "-");
    }
}
