//! JSONL trial journal: checkpointing and resume.
//!
//! With [`crate::SweepSpec::journal`] set, the runner appends one JSON
//! line per completed trial, flushed immediately so a killed sweep loses
//! at most the trial being written. On the next run with the same spec,
//! the journaled trials are loaded instead of re-executed; because trial
//! seeds are a pure function of the grid coordinates, the resumed sweep's
//! aggregated output is identical to an uninterrupted run's.
//!
//! The first line is a header carrying a fingerprint of the spec and the
//! experiment definitions. A journal whose fingerprint does not match the
//! current spec is refused — silently mixing trials of two different
//! grids would corrupt both — and a torn final line (crash mid-write) is
//! dropped.
//!
//! Format (one JSON document per line):
//!
//! ```text
//! {"sweep":"epidemic","version":1,"master_seed":1,"fingerprint":"9c0f…"}
//! {"point":0,"exp":"epidemic_full","n":1000,"trial":0,"seed":17606558817767979835,"values":[13.294]}
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::Path;

use crate::json;

/// Journal format version (bumped on incompatible line-format changes).
const VERSION: u64 = 1;

/// One journaled trial.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Grid-point index (experiment-major, then size).
    pub point: usize,
    /// Trial index within the point.
    pub trial: usize,
    /// The seed the trial ran with (validated against re-derivation on
    /// load).
    pub seed: u64,
    /// Metric values in the experiment's metric order (NaN = missing).
    pub values: Vec<f64>,
}

/// Append handle to an open journal.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
}

impl Journal {
    /// Opens (or creates) the journal at `path` and returns the entries
    /// already recorded for this spec fingerprint.
    ///
    /// A fresh journal gets a header line; an existing one must carry a
    /// matching fingerprint or an error is returned. A final line that
    /// fails to parse is treated as a torn write and dropped; malformed
    /// lines elsewhere are errors.
    pub fn open(
        path: &Path,
        sweep_name: &str,
        master_seed: u64,
        fingerprint: u64,
    ) -> Result<(Self, Vec<JournalEntry>), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create journal dir {}: {e}", parent.display()))?;
            }
        }
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
        };
        let mut entries = Vec::new();
        let mut need_header = true;
        if let Some(text) = &existing {
            if !text.trim().is_empty() {
                entries = parse_journal(text, path, fingerprint)?;
                need_header = false;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let mut journal = Self {
            writer: BufWriter::new(file),
        };
        if need_header {
            let mut line = String::from("{\"sweep\":");
            json::write_str(&mut line, sweep_name);
            line.push_str(&format!(
                ",\"version\":{VERSION},\"master_seed\":{master_seed},\"fingerprint\":\"{fingerprint:016x}\"}}"
            ));
            journal.write_line(&line)?;
        }
        Ok((journal, entries))
    }

    /// Appends one completed trial, flushing so at most the in-flight
    /// trial is lost on a crash.
    pub fn record(&mut self, exp: &str, n: u64, entry: &JournalEntry) -> Result<(), String> {
        let mut line = format!("{{\"point\":{},\"exp\":", entry.point);
        json::write_str(&mut line, exp);
        line.push_str(&format!(
            ",\"n\":{n},\"trial\":{},\"seed\":{},\"values\":[",
            entry.trial, entry.seed
        ));
        for (i, &v) in entry.values.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            json::write_f64(&mut line, v);
        }
        line.push_str("]}");
        self.write_line(&line)
    }

    fn write_line(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("journal write failed: {e}"))
    }
}

/// Reads the entries of an existing journal **without** opening it for
/// append — the loader behind `sweep --merge`. Validates the header
/// fingerprint exactly like [`Journal::open`]; unlike `open`, a missing
/// file is an error (merging an absent shard is a caller mistake, not a
/// fresh journal).
pub fn read_entries(path: &Path, fingerprint: u64) -> Result<Vec<JournalEntry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
    if text.trim().is_empty() {
        return Err(format!("journal {} is empty (no header)", path.display()));
    }
    parse_journal(&text, path, fingerprint)
}

/// Parses a non-empty journal: header line (fingerprint-checked), entry
/// lines, with a torn final line dropped.
fn parse_journal(text: &str, path: &Path, fingerprint: u64) -> Result<Vec<JournalEntry>, String> {
    let lines: Vec<&str> = text.lines().collect();
    let (first, rest) = lines.split_first().expect("caller checked non-empty");
    check_header(first, fingerprint).map_err(|e| format!("journal {}: {e}", path.display()))?;
    let mut entries = Vec::new();
    for (i, line) in rest.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_entry(line) {
            Ok(entry) => entries.push(entry),
            // A torn final line is an interrupted write; any earlier
            // parse failure is real corruption.
            Err(_) if i + 1 == rest.len() => break,
            Err(e) => {
                return Err(format!(
                    "journal {}: corrupt line {}: {e}",
                    path.display(),
                    i + 2
                ))
            }
        }
    }
    Ok(entries)
}

fn check_header(line: &str, fingerprint: u64) -> Result<(), String> {
    let doc = json::parse(line).map_err(|e| format!("corrupt header: {e}"))?;
    let version = doc.get("version").and_then(json::Value::as_u64);
    if version != Some(VERSION) {
        return Err(format!("unsupported journal version {version:?}"));
    }
    let found = doc
        .get("fingerprint")
        .and_then(json::Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("header is missing the spec fingerprint")?;
    if found != fingerprint {
        return Err(format!(
            "spec fingerprint mismatch (journal {found:016x}, current spec {fingerprint:016x}); \
             the journal belongs to a different grid — delete it or point the spec elsewhere"
        ));
    }
    Ok(())
}

fn parse_entry(line: &str) -> Result<JournalEntry, String> {
    let doc = json::parse(line)?;
    let field_u64 = |key: &str| {
        doc.get(key)
            .and_then(json::Value::as_u64)
            .ok_or(format!("missing field {key:?}"))
    };
    let values = doc
        .get("values")
        .and_then(json::Value::as_arr)
        .ok_or("missing field \"values\"")?
        .iter()
        .map(|v| v.as_f64().ok_or("non-numeric metric value".to_string()))
        .collect::<Result<Vec<f64>, _>>()?;
    Ok(JournalEntry {
        point: field_u64("point")? as usize,
        trial: field_u64("trial")? as usize,
        seed: field_u64("seed")?,
        values,
    })
}

/// FNV-1a over a canonical description of the grid: spec fields plus the
/// experiment names, metric lists, and trial caps. Two specs with the same
/// fingerprint journal compatibly.
pub fn fingerprint(parts: impl IntoIterator<Item = String>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for byte in part.as_bytes().iter().chain(&[0x1f]) {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pp-sweep-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn round_trips_entries() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let entry = JournalEntry {
            point: 3,
            trial: 7,
            seed: u64::MAX - 5,
            values: vec![1.5, f64::NAN, f64::INFINITY, -0.25],
        };
        {
            let (mut journal, existing) = Journal::open(&path, "t", 9, 0xABCD).unwrap();
            assert!(existing.is_empty());
            journal.record("exp", 100, &entry).unwrap();
        }
        let (_journal, loaded) = Journal::open(&path, "t", 9, 0xABCD).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].point, entry.point);
        assert_eq!(loaded[0].trial, entry.trial);
        assert_eq!(loaded[0].seed, entry.seed);
        assert_eq!(loaded[0].values[0], 1.5);
        assert!(loaded[0].values[1].is_nan());
        assert_eq!(loaded[0].values[2], f64::INFINITY);
        assert_eq!(loaded[0].values[3], -0.25);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = temp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        drop(Journal::open(&path, "t", 9, 1).unwrap());
        let err = Journal::open(&path, "t", 9, 2).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, "t", 9, 7).unwrap();
            journal
                .record(
                    "exp",
                    10,
                    &JournalEntry {
                        point: 0,
                        trial: 0,
                        seed: 1,
                        values: vec![1.0],
                    },
                )
                .unwrap();
        }
        // Simulate a crash mid-write of the second entry.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"point\":0,\"exp\":\"exp\",\"n\":10,\"trial\":1,\"se");
        std::fs::write(&path, &text).unwrap();
        let (_journal, loaded) = Journal::open(&path, "t", 9, 7).unwrap();
        assert_eq!(loaded.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_before_the_end_is_an_error() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, "t", 9, 7).unwrap();
            journal
                .record(
                    "exp",
                    10,
                    &JournalEntry {
                        point: 0,
                        trial: 0,
                        seed: 1,
                        values: vec![1.0],
                    },
                )
                .unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.insert_str(text.find('\n').unwrap() + 1, "garbage line\n");
        std::fs::write(&path, &text).unwrap();
        let err = Journal::open(&path, "t", 9, 7).unwrap_err();
        assert!(err.contains("corrupt line"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprints_separate_distinct_grids() {
        let a = fingerprint(["x".to_string(), "y".to_string()]);
        let b = fingerprint(["xy".to_string()]);
        let c = fingerprint(["x".to_string(), "z".to_string()]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fingerprint(["x".to_string(), "y".to_string()]));
    }
}
