//! JSONL trial journal: checkpointing and resume.
//!
//! With [`crate::SweepSpec::journal`] set, the runner appends one JSON
//! line per completed trial, flushed immediately so a killed sweep loses
//! at most the trial being written. On the next run with the same spec,
//! the journaled trials are loaded instead of re-executed; because trial
//! seeds are a pure function of the grid coordinates, the resumed sweep's
//! aggregated output is identical to an uninterrupted run's.
//!
//! The first line is a header carrying a fingerprint of the spec and the
//! experiment definitions. A journal whose fingerprint does not match the
//! current spec is refused — silently mixing trials of two different
//! grids would corrupt both.
//!
//! ## Durability
//!
//! Every line (header included) carries a trailing CRC-32 of the line as
//! it was originally composed, so corruption anywhere in the file —
//! bit-flips, truncation, a torn write — is *detected*, not just
//! mis-parsed. A final line that fails its check is treated as a torn
//! write from a crash: it is dropped with a warning naming the line
//! number. A failed check (or unparsable line) anywhere **before** the
//! end is real corruption and a hard error, again with the line number.
//! The header is additionally fsync'd when first written, so a resumable
//! journal's identity survives a crash immediately after creation.
//! Version-1 journals (written before the checksum scheme) are still
//! read, with the legacy torn-final-line-only tolerance.
//!
//! Failed trials (a panicking experiment that exhausted its retries) are
//! journaled too, with a `failed` message instead of `values`; on resume
//! they are re-run rather than replayed.
//!
//! Format (one JSON document per line):
//!
//! ```text
//! {"sweep":"epidemic","version":2,"master_seed":1,"fingerprint":"9c0f…","crc":"5ab0c77d"}
//! {"point":0,"exp":"epidemic_full","n":1000,"trial":0,"seed":17606558817767979835,"values":[13.294],"crc":"8e12f3a4"}
//! {"point":0,"exp":"epidemic_full","n":1000,"trial":1,"seed":4086511333960186760,"values":[13.551],"counters":{"batches":96,"null_skip_runs":3},"crc":"1d40b2c6"}
//! ```
//!
//! The optional `counters` object (added with the telemetry layer)
//! carries the trial's nonzero engine counters; entries without it —
//! every pre-telemetry journal — parse exactly as before.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::Path;

use pp_engine::snapshot::crc32;

use crate::json;

/// Journal format version (bumped on incompatible line-format changes).
/// Version 2 added the per-line CRC-32; version-1 journals are still
/// readable.
const VERSION: u64 = 2;

/// Length of the fixed-width `,"crc":"xxxxxxxx"}` line suffix.
const CRC_SUFFIX_LEN: usize = 18;

/// One journaled trial.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Grid-point index (experiment-major, then size).
    pub point: usize,
    /// Trial index within the point.
    pub trial: usize,
    /// The seed the trial ran with (validated against re-derivation on
    /// load).
    pub seed: u64,
    /// Metric values in the experiment's metric order (NaN = missing;
    /// empty for failed trials).
    pub values: Vec<f64>,
    /// `Some(message)` if the trial failed permanently (panicked through
    /// all retries) instead of producing values. Failed entries are
    /// re-run on resume, not replayed.
    pub failed: Option<String>,
    /// Nonzero telemetry counters observed during the trial, sorted by
    /// name. Serialized as an optional `"counters"` object; an entry
    /// without one (any pre-telemetry journal, or a run with
    /// `PP_METRICS=off`) parses as empty, so the field is fully
    /// version-2-compatible in both directions.
    pub counters: Vec<(String, u64)>,
}

/// Append handle to an open journal.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
}

impl Journal {
    /// Opens (or creates) the journal at `path` and returns the entries
    /// already recorded for this spec fingerprint.
    ///
    /// A fresh journal gets a header line; an existing one must carry a
    /// matching fingerprint or an error is returned. A final line that
    /// fails to parse is treated as a torn write and dropped; malformed
    /// lines elsewhere are errors.
    pub fn open(
        path: &Path,
        sweep_name: &str,
        master_seed: u64,
        fingerprint: u64,
    ) -> Result<(Self, Vec<JournalEntry>), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create journal dir {}: {e}", parent.display()))?;
            }
        }
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
        };
        let mut entries = Vec::new();
        let mut need_header = true;
        if let Some(text) = &existing {
            if !text.trim().is_empty() {
                entries = parse_journal(text, path, fingerprint)?;
                need_header = false;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let mut journal = Self {
            writer: BufWriter::new(file),
        };
        if need_header {
            let mut line = String::from("{\"sweep\":");
            json::write_str(&mut line, sweep_name);
            line.push_str(&format!(
                ",\"version\":{VERSION},\"master_seed\":{master_seed},\"fingerprint\":\"{fingerprint:016x}\"}}"
            ));
            journal.write_checked(line)?;
            // The header is the journal's identity; make sure it survives
            // a crash right after creation.
            journal
                .writer
                .get_ref()
                .sync_all()
                .map_err(|e| format!("journal fsync failed: {e}"))?;
        }
        Ok((journal, entries))
    }

    /// Appends one completed (or permanently failed) trial, flushing so
    /// at most the in-flight trial is lost on a crash.
    pub fn record(&mut self, exp: &str, n: u64, entry: &JournalEntry) -> Result<(), String> {
        let mut line = format!("{{\"point\":{},\"exp\":", entry.point);
        json::write_str(&mut line, exp);
        line.push_str(&format!(
            ",\"n\":{n},\"trial\":{},\"seed\":{}",
            entry.trial, entry.seed
        ));
        match &entry.failed {
            Some(msg) => {
                line.push_str(",\"failed\":");
                json::write_str(&mut line, msg);
                line.push('}');
            }
            None => {
                line.push_str(",\"values\":[");
                for (i, &v) in entry.values.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    json::write_f64(&mut line, v);
                }
                line.push(']');
                if !entry.counters.is_empty() {
                    line.push_str(",\"counters\":{");
                    for (i, (name, v)) in entry.counters.iter().enumerate() {
                        if i > 0 {
                            line.push(',');
                        }
                        json::write_str(&mut line, name);
                        line.push_str(&format!(":{v}"));
                    }
                    line.push('}');
                }
                line.push('}');
            }
        }
        self.write_checked(line)
    }

    /// Appends the line with its CRC-32 suffix spliced in before the
    /// closing brace. The checksum covers the line as composed (with its
    /// plain `}`), so readers reconstruct and verify exactly that.
    fn write_checked(&mut self, mut line: String) -> Result<(), String> {
        debug_assert!(line.ends_with('}'));
        let crc = crc32(line.as_bytes());
        line.pop();
        line.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
        self.write_line(&line)
    }

    fn write_line(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("journal write failed: {e}"))
    }
}

/// Whether the line ends in the fixed-width `,"crc":"xxxxxxxx"}` suffix.
fn has_crc_suffix(line: &str) -> bool {
    line.len() >= CRC_SUFFIX_LEN
        && line.is_char_boundary(line.len() - CRC_SUFFIX_LEN)
        && line[line.len() - CRC_SUFFIX_LEN..].starts_with(",\"crc\":\"")
        && line.ends_with("\"}")
}

/// Strips and verifies the CRC suffix, returning the line as originally
/// composed (closing `}` restored).
fn strip_crc(line: &str) -> Result<String, String> {
    if !has_crc_suffix(line) {
        return Err("missing line checksum".into());
    }
    let split = line.len() - CRC_SUFFIX_LEN;
    let hex = &line[split + 8..line.len() - 2];
    let stored =
        u32::from_str_radix(hex, 16).map_err(|_| format!("malformed line checksum {hex:?}"))?;
    let original = format!("{}}}", &line[..split]);
    let computed = crc32(original.as_bytes());
    if computed != stored {
        return Err(format!(
            "line checksum mismatch (stored {stored:08x}, computed {computed:08x})"
        ));
    }
    Ok(original)
}

/// Reads the entries of an existing journal **without** opening it for
/// append — the loader behind `sweep --merge`. Validates the header
/// fingerprint exactly like [`Journal::open`]; unlike `open`, a missing
/// file is an error (merging an absent shard is a caller mistake, not a
/// fresh journal).
pub fn read_entries(path: &Path, fingerprint: u64) -> Result<Vec<JournalEntry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
    if text.trim().is_empty() {
        return Err(format!("journal {} is empty (no header)", path.display()));
    }
    parse_journal(&text, path, fingerprint)
}

/// Parses a non-empty journal: header line (version- and
/// fingerprint-checked), then entry lines, each checksum-verified on
/// version-2 journals. A final line that fails is a torn write — dropped
/// with a warning naming the line number; a failure anywhere earlier is
/// corruption and an error, also naming the line number.
fn parse_journal(text: &str, path: &Path, fingerprint: u64) -> Result<Vec<JournalEntry>, String> {
    let lines: Vec<&str> = text.lines().collect();
    let (first, rest) = lines.split_first().expect("caller checked non-empty");
    let version =
        check_header(first, fingerprint).map_err(|e| format!("journal {}: {e}", path.display()))?;
    let checked = version >= 2;
    let mut entries = Vec::new();
    for (i, line) in rest.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = if checked {
            strip_crc(line).and_then(|original| parse_entry(&original))
        } else {
            parse_entry(line)
        };
        match parsed {
            Ok(entry) => entries.push(entry),
            // A torn final line is an interrupted write; any earlier
            // failure is real corruption.
            Err(e) if i + 1 == rest.len() => {
                eprintln!(
                    "[journal] {}: dropping torn final line {}: {e}",
                    path.display(),
                    i + 2
                );
                break;
            }
            Err(e) => {
                return Err(format!(
                    "journal {}: corrupt line {}: {e}",
                    path.display(),
                    i + 2
                ))
            }
        }
    }
    Ok(entries)
}

/// Validates the header line and returns the journal's format version.
fn check_header(line: &str, fingerprint: u64) -> Result<u64, String> {
    // The checksum (when present) is verified before anything else, so a
    // corrupted-but-still-valid-JSON header cannot slip through.
    let original = if has_crc_suffix(line) {
        strip_crc(line).map_err(|e| format!("corrupt header: {e}"))?
    } else {
        line.to_string()
    };
    let doc = json::parse(&original).map_err(|e| format!("corrupt header: {e}"))?;
    let version = doc.get("version").and_then(json::Value::as_u64);
    let version = match version {
        Some(v @ 1..=VERSION) => v,
        other => return Err(format!("unsupported journal version {other:?}")),
    };
    if version >= 2 && !has_crc_suffix(line) {
        return Err("version 2 header is missing its checksum".into());
    }
    let found = doc
        .get("fingerprint")
        .and_then(json::Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("header is missing the spec fingerprint")?;
    if found != fingerprint {
        return Err(format!(
            "spec fingerprint mismatch (journal {found:016x}, current spec {fingerprint:016x}); \
             the journal belongs to a different grid — delete it or point the spec elsewhere"
        ));
    }
    Ok(version)
}

fn parse_entry(line: &str) -> Result<JournalEntry, String> {
    let doc = json::parse(line)?;
    let field_u64 = |key: &str| {
        doc.get(key)
            .and_then(json::Value::as_u64)
            .ok_or(format!("missing field {key:?}"))
    };
    let failed = doc
        .get("failed")
        .map(|v| {
            v.as_str()
                .map(String::from)
                .ok_or("non-string failure message".to_string())
        })
        .transpose()?;
    let values = if failed.is_some() {
        Vec::new()
    } else {
        doc.get("values")
            .and_then(json::Value::as_arr)
            .ok_or("missing field \"values\"")?
            .iter()
            .map(|v| v.as_f64().ok_or("non-numeric metric value".to_string()))
            .collect::<Result<Vec<f64>, _>>()?
    };
    // Optional: entries written before telemetry landed simply lack it.
    let counters = match doc.get("counters") {
        None => Vec::new(),
        Some(json::Value::Obj(fields)) => fields
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|v| (k.clone(), v))
                    .ok_or(format!("non-integer counter {k:?}"))
            })
            .collect::<Result<Vec<(String, u64)>, _>>()?,
        Some(_) => return Err("non-object \"counters\" field".into()),
    };
    Ok(JournalEntry {
        point: field_u64("point")? as usize,
        trial: field_u64("trial")? as usize,
        seed: field_u64("seed")?,
        values,
        failed,
        counters,
    })
}

/// FNV-1a over a canonical description of the grid: spec fields plus the
/// experiment names, metric lists, and trial caps. Two specs with the same
/// fingerprint journal compatibly.
pub fn fingerprint(parts: impl IntoIterator<Item = String>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for byte in part.as_bytes().iter().chain(&[0x1f]) {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pp-sweep-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn round_trips_entries() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let entry = JournalEntry {
            point: 3,
            trial: 7,
            seed: u64::MAX - 5,
            values: vec![1.5, f64::NAN, f64::INFINITY, -0.25],
            failed: None,
            counters: vec![("batches".into(), 31), ("null_skip_runs".into(), 2)],
        };
        {
            let (mut journal, existing) = Journal::open(&path, "t", 9, 0xABCD).unwrap();
            assert!(existing.is_empty());
            journal.record("exp", 100, &entry).unwrap();
        }
        let (_journal, loaded) = Journal::open(&path, "t", 9, 0xABCD).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].point, entry.point);
        assert_eq!(loaded[0].trial, entry.trial);
        assert_eq!(loaded[0].seed, entry.seed);
        assert_eq!(loaded[0].values[0], 1.5);
        assert!(loaded[0].values[1].is_nan());
        assert_eq!(loaded[0].values[2], f64::INFINITY);
        assert_eq!(loaded[0].values[3], -0.25);
        assert_eq!(loaded[0].counters, entry.counters);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = temp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        drop(Journal::open(&path, "t", 9, 1).unwrap());
        let err = Journal::open(&path, "t", 9, 2).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, "t", 9, 7).unwrap();
            journal
                .record(
                    "exp",
                    10,
                    &JournalEntry {
                        point: 0,
                        trial: 0,
                        seed: 1,
                        values: vec![1.0],
                        failed: None,
                        counters: Vec::new(),
                    },
                )
                .unwrap();
        }
        // Simulate a crash mid-write of the second entry.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"point\":0,\"exp\":\"exp\",\"n\":10,\"trial\":1,\"se");
        std::fs::write(&path, &text).unwrap();
        let (_journal, loaded) = Journal::open(&path, "t", 9, 7).unwrap();
        assert_eq!(loaded.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_before_the_end_is_an_error() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, "t", 9, 7).unwrap();
            journal
                .record(
                    "exp",
                    10,
                    &JournalEntry {
                        point: 0,
                        trial: 0,
                        seed: 1,
                        values: vec![1.0],
                        failed: None,
                        counters: Vec::new(),
                    },
                )
                .unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.insert_str(text.find('\n').unwrap() + 1, "garbage line\n");
        std::fs::write(&path, &text).unwrap();
        let err = Journal::open(&path, "t", 9, 7).unwrap_err();
        assert!(err.contains("corrupt line"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_in_the_middle_is_detected() {
        let path = temp_path("bitflip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, "t", 9, 7).unwrap();
            for trial in 0..2 {
                journal
                    .record(
                        "exp",
                        10,
                        &JournalEntry {
                            point: 0,
                            trial,
                            seed: 1,
                            values: vec![1.0],
                            failed: None,
                            counters: Vec::new(),
                        },
                    )
                    .unwrap();
            }
        }
        // Corrupt entry line 2 (not the final line) while keeping it
        // valid JSON — only the checksum can catch this.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = lines[1].replacen("\"n\":10", "\"n\":11", 1);
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = Journal::open(&path, "t", 9, 7).unwrap_err();
        assert!(err.contains("corrupt line 2"), "{err}");
        assert!(err.contains("checksum mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn final_line_missing_checksum_is_dropped_as_torn() {
        let path = temp_path("torn-nocrc");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, "t", 9, 7).unwrap();
            journal
                .record(
                    "exp",
                    10,
                    &JournalEntry {
                        point: 0,
                        trial: 0,
                        seed: 1,
                        values: vec![1.0],
                        failed: None,
                        counters: Vec::new(),
                    },
                )
                .unwrap();
        }
        // A syntactically complete JSON line whose checksum never made
        // it to disk is still a torn write when it is the final line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(
            "{\"point\":0,\"exp\":\"exp\",\"n\":10,\"trial\":1,\"seed\":2,\"values\":[2.0]}\n",
        );
        std::fs::write(&path, &text).unwrap();
        let (_journal, loaded) = Journal::open(&path, "t", 9, 7).unwrap();
        assert_eq!(loaded.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_v1_journals_still_parse() {
        let path = temp_path("legacy-v1");
        let _ = std::fs::remove_file(&path);
        std::fs::write(
            &path,
            "{\"sweep\":\"t\",\"version\":1,\"master_seed\":9,\"fingerprint\":\"0000000000000007\"}\n\
             {\"point\":0,\"exp\":\"e\",\"n\":10,\"trial\":0,\"seed\":1,\"values\":[1.5]}\n",
        )
        .unwrap();
        let loaded = read_entries(&path, 7).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].values, vec![1.5]);
        assert!(loaded[0].counters.is_empty(), "absent field parses empty");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_trials_round_trip() {
        let path = temp_path("failed");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, "t", 9, 7).unwrap();
            journal
                .record(
                    "exp",
                    10,
                    &JournalEntry {
                        point: 0,
                        trial: 3,
                        seed: 1,
                        values: Vec::new(),
                        failed: Some("worker panicked: \"boom\"".into()),
                        counters: Vec::new(),
                    },
                )
                .unwrap();
        }
        let (_journal, loaded) = Journal::open(&path, "t", 9, 7).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].trial, 3);
        assert_eq!(
            loaded[0].failed.as_deref(),
            Some("worker panicked: \"boom\"")
        );
        assert!(loaded[0].values.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprints_separate_distinct_grids() {
        let a = fingerprint(["x".to_string(), "y".to_string()]);
        let b = fingerprint(["xy".to_string()]);
        let c = fingerprint(["x".to_string(), "z".to_string()]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fingerprint(["x".to_string(), "y".to_string()]));
    }
}
