//! Minimal JSON reading/writing for spec files and journals.
//!
//! The workspace's `serde` is a vendored no-op shim (the build environment
//! is offline), so the few JSON needs of this crate — spec files, JSONL
//! journal lines — are served by this hand-rolled recursive-descent parser
//! and a pair of writer helpers. Numbers are kept as raw tokens
//! ([`Value::Num`]) so `u64` seeds survive without a lossy round-trip
//! through `f64`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (lossless for `u64` seeds).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`. `null` reads as NaN (the journal's encoding
    /// of a missing metric) and the strings `"inf"` / `"-inf"` as the
    /// infinities, mirroring [`write_f64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            Value::Null => Some(f64::NAN),
            Value::Str(s) if s == "inf" => Some(f64::INFINITY),
            Value::Str(s) if s == "-inf" => Some(f64::NEG_INFINITY),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Value::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let tok = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number token");
            if tok.is_empty() || tok.parse::<f64>().is_err() {
                return Err(format!("invalid number {tok:?} at byte {start}"));
            }
            Ok(Value::Num(tok.to_string()))
        }
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid token at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unescaped).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("non-empty rest");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` losslessly: finite values use Rust's shortest
/// round-trip formatting, NaN becomes `null` (a missing metric), and the
/// infinities become the strings `"inf"` / `"-inf"` (JSON has no literal
/// for them). [`Value::as_f64`] inverts all four cases.
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("null");
    } else if x == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if x == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else {
        let _ = write!(out, "{x}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
    }

    #[test]
    fn u64_seeds_are_lossless() {
        let big = u64::MAX - 12345;
        let v = parse(&format!("{{\"seed\": {big}}}")).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn f64_round_trips_through_writer() {
        for x in [
            0.1,
            -3.75e-300,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let mut s = String::new();
            write_f64(&mut s, x);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        assert!(parse(&s).unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line1\nline2\t\"quoted\" \\slash ünïcode";
        let mut s = String::new();
        write_str(&mut s, original);
        assert_eq!(parse(&s).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("1.2.3").is_err());
    }
}
