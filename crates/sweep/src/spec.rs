//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] describes a full experiment grid: which experiments to
//! run (by registry name, when loaded from a file), at which population
//! sizes, how many trials per point, on which engine, from which master
//! seed, on how many threads, and (optionally) through which journal file.
//! Specs are built programmatically by the harness binaries and parsed
//! from TOML or JSON files by the `sweep` CLI.
//!
//! ## Spec file format
//!
//! TOML (a flat `key = value` subset — no tables, no multi-line values):
//!
//! ```toml
//! name = "table_epidemic"
//! master_seed = 1
//! sizes = [1000, 10000, 100000]
//! trials = 20
//! threads = 8            # 0 = all available cores
//! engine = "auto"        # auto | sequential | batched
//! experiments = ["epidemic_full", "epidemic_sub3"]
//! journal = "results/table_epidemic.jsonl"
//! max_retries = 2        # per-trial panic retries before recording a failure
//! fault = "kill@3"       # fault injection: abort after 3 completed trials
//! fill_threads = 2       # per-trial parallel batch fill (0 = serial)
//! ```
//!
//! or the same keys as a JSON object (detected by a leading `{`). `name`,
//! `sizes`, and `trials` are required; everything else defaults.
//! `max_retries` and `fault` are run-policy knobs, not grid identity:
//! they are excluded from the journal fingerprint, so changing them never
//! invalidates recorded trials.

use std::path::{Path, PathBuf};
use std::str::FromStr;

use pp_engine::EngineMode;

use crate::json;

/// A declarative description of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name: labels output files, journal headers, and progress.
    pub name: String,
    /// Master seed: every trial seed is derived from it and the trial's
    /// grid coordinates, so one number reproduces the whole sweep.
    pub master_seed: u64,
    /// Population sizes (the grid's inner axis).
    pub sizes: Vec<u64>,
    /// Trials per grid point (capped by `PP_SWEEP_TRIALS`, see
    /// [`SweepSpec::effective_trials`]).
    pub trials: usize,
    /// Worker threads; 0 means all available cores (capped at 24).
    pub threads: usize,
    /// Engine policy handed to every trial (see [`EngineMode`]).
    pub engine: EngineMode,
    /// Experiment registry names (used when the spec comes from a file;
    /// binaries that build experiments programmatically may leave it
    /// empty).
    pub experiments: Vec<String>,
    /// Journal path for resumable runs; `None` disables journaling.
    /// Relative paths are used as-is (resolved against the process CWD) —
    /// callers with a project anchor should rebase them (the bench
    /// harness anchors relative journals at the workspace root, next to
    /// its `results/` outputs).
    pub journal: Option<PathBuf>,
    /// How many times a panicking trial is retried (with exponential
    /// backoff) before being recorded as a permanent failure. Not part
    /// of the grid identity (excluded from the journal fingerprint).
    pub max_retries: usize,
    /// Deterministic fault plan (`"kill@N"`): abort the process — as a
    /// SIGKILL would — after `N` trials have been completed by this run.
    /// For crash-recovery testing; see [`pp_engine::env::parse_fault`].
    /// Not part of the grid identity (excluded from the journal
    /// fingerprint).
    pub fault: Option<String>,
    /// Per-trial fill-thread override for the batched engine's
    /// deterministic parallel batch fill (`None` = inherit the
    /// `PP_THREADS` environment knob, `0` = explicitly serial, `k ≥ 1` =
    /// parallel with up to `k` workers per trial — clamped so
    /// `trial workers × fill workers` stays at the machine). Enabling the
    /// parallel discipline changes trial trajectories (the worker *count*
    /// does not), so the effective enabled-ness — not the count — is part
    /// of the journal fingerprint.
    pub fill_threads: Option<u64>,
}

impl SweepSpec {
    /// A spec with the given grid and all other fields defaulted
    /// (`master_seed = 1`, all cores, auto engine, no journal).
    pub fn new(name: impl Into<String>, sizes: Vec<u64>, trials: usize) -> Self {
        Self {
            name: name.into(),
            master_seed: 1,
            sizes,
            trials,
            threads: 0,
            engine: EngineMode::Auto,
            experiments: Vec::new(),
            journal: None,
            max_retries: 0,
            fault: None,
            fill_threads: None,
        }
    }

    /// The trial count actually run: [`SweepSpec::trials`] capped by the
    /// `PP_SWEEP_TRIALS` environment variable (mirroring the equivalence
    /// suites' `PP_EQ_TRIALS`), so CI can smoke-run any sweep cheaply.
    pub fn effective_trials(&self) -> usize {
        apply_trials_cap(self.trials, trials_env_cap())
    }

    /// The effective fill-thread setting trials run under: the spec's
    /// [`SweepSpec::fill_threads`] override (`0` = explicitly serial),
    /// else the `PP_THREADS` environment knob
    /// ([`pp_engine::env::fill_threads`]). `Some(k)` means trials run the
    /// batched engine's parallel-fill draw discipline — a different
    /// (equally exact) trajectory family than the serial fill, with bytes
    /// independent of `k` — so the enabled-ness feeds the journal
    /// fingerprint: a journal recorded under one discipline refuses to
    /// resume under the other.
    pub fn effective_fill_threads(&self) -> Option<u64> {
        match self.fill_threads {
            Some(0) => None,
            Some(k) => Some(k),
            None => pp_engine::env::fill_threads(),
        }
    }

    /// The worker-thread count actually used: [`SweepSpec::threads`], or
    /// all available cores (capped at 24) when 0.
    pub fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .min(24)
        }
    }

    /// Parses a spec from TOML or JSON text (JSON is detected by a leading
    /// `{`).
    pub fn parse_str(text: &str) -> Result<Self, String> {
        let trimmed = text.trim_start();
        if trimmed.starts_with('{') {
            Self::from_json(trimmed)
        } else {
            Self::from_toml(text)
        }
    }

    /// Reads and parses a spec file.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read spec {}: {e}", path.display()))?;
        Self::parse_str(&text).map_err(|e| format!("invalid spec {}: {e}", path.display()))
    }

    fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let fields = match &doc {
            json::Value::Obj(fields) => fields,
            _ => return Err("spec must be a JSON object".into()),
        };
        let mut builder = Builder::default();
        for (key, value) in fields {
            let field = match value {
                json::Value::Num(tok) => Field::Int(
                    tok.parse()
                        .map_err(|_| format!("{key}: expected an unsigned integer, got {tok}"))?,
                ),
                json::Value::Str(s) => Field::Str(s.clone()),
                json::Value::Arr(items) => {
                    if items.iter().all(|v| matches!(v, json::Value::Num(_))) {
                        Field::Ints(
                            items
                                .iter()
                                .map(|v| v.as_u64().ok_or(format!("{key}: non-integer element")))
                                .collect::<Result<_, _>>()?,
                        )
                    } else {
                        Field::Strs(
                            items
                                .iter()
                                .map(|v| {
                                    v.as_str()
                                        .map(String::from)
                                        .ok_or(format!("{key}: mixed array element"))
                                })
                                .collect::<Result<_, _>>()?,
                        )
                    }
                }
                other => return Err(format!("{key}: unsupported value {other:?}")),
            };
            builder.set(key, field)?;
        }
        builder.finish()
    }

    fn from_toml(text: &str) -> Result<Self, String> {
        let mut builder = Builder::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(format!("line {}: expected key = value", lineno + 1))?;
            let field =
                parse_toml_value(value.trim()).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            builder.set(key.trim(), field)?;
        }
        builder.finish()
    }
}

/// Reads the `PP_SWEEP_TRIALS` reduced-trials knob from the environment
/// (via the workspace's shared [`pp_engine::env`] parsing).
pub fn trials_env_cap() -> Option<usize> {
    pp_engine::env::unsigned("PP_SWEEP_TRIALS").map(|v| v as usize)
}

/// Applies the reduced-trials cap (at least one trial always runs).
pub(crate) fn apply_trials_cap(trials: usize, cap: Option<usize>) -> usize {
    match cap {
        Some(cap) => trials.min(cap).max(1),
        None => trials.max(1),
    }
}

/// One parsed spec-file value, shared by the TOML and JSON front-ends.
enum Field {
    Int(u64),
    Str(String),
    Ints(Vec<u64>),
    Strs(Vec<String>),
}

/// Accumulates spec fields, validating names and types.
#[derive(Default)]
struct Builder {
    name: Option<String>,
    master_seed: Option<u64>,
    sizes: Option<Vec<u64>>,
    trials: Option<u64>,
    threads: Option<u64>,
    engine: Option<EngineMode>,
    experiments: Option<Vec<String>>,
    journal: Option<String>,
    max_retries: Option<u64>,
    fault: Option<String>,
    fill_threads: Option<u64>,
}

impl Builder {
    fn set(&mut self, key: &str, field: Field) -> Result<(), String> {
        let wrong = |want: &str| Err(format!("{key}: expected {want}"));
        match (key, field) {
            ("name", Field::Str(s)) => self.name = Some(s),
            ("name", _) => return wrong("a string"),
            ("master_seed", Field::Int(x)) => self.master_seed = Some(x),
            ("master_seed", _) => return wrong("an unsigned integer"),
            ("sizes", Field::Ints(v)) => self.sizes = Some(v),
            ("sizes", _) => return wrong("an array of integers"),
            ("trials", Field::Int(x)) => self.trials = Some(x),
            ("trials", _) => return wrong("an unsigned integer"),
            ("threads", Field::Int(x)) => self.threads = Some(x),
            ("threads", _) => return wrong("an unsigned integer"),
            ("engine", Field::Str(s)) => self.engine = Some(EngineMode::from_str(&s)?),
            ("engine", _) => return wrong("a string"),
            ("experiments", Field::Strs(v)) => self.experiments = Some(v),
            ("experiments", Field::Ints(v)) if v.is_empty() => self.experiments = Some(Vec::new()),
            ("experiments", _) => return wrong("an array of strings"),
            ("journal", Field::Str(s)) => self.journal = Some(s),
            ("journal", _) => return wrong("a string"),
            ("max_retries", Field::Int(x)) => self.max_retries = Some(x),
            ("max_retries", _) => return wrong("an unsigned integer"),
            ("fault", Field::Str(s)) => {
                pp_engine::env::parse_fault(&s)?;
                self.fault = Some(s);
            }
            ("fault", _) => return wrong("a string"),
            ("fill_threads", Field::Int(x)) => self.fill_threads = Some(x),
            ("fill_threads", _) => return wrong("an unsigned integer"),
            (other, _) => {
                return Err(format!(
                    "unknown key {other:?} (expected name, master_seed, sizes, trials, \
                     threads, engine, experiments, journal, max_retries, fault, fill_threads)"
                ))
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<SweepSpec, String> {
        let name = self.name.ok_or("missing required key: name")?;
        let sizes = self.sizes.ok_or("missing required key: sizes")?;
        let trials = self.trials.ok_or("missing required key: trials")? as usize;
        if sizes.is_empty() {
            return Err("sizes must be non-empty".into());
        }
        if trials == 0 {
            return Err("trials must be at least 1".into());
        }
        Ok(SweepSpec {
            name,
            master_seed: self.master_seed.unwrap_or(1),
            sizes,
            trials,
            threads: self.threads.unwrap_or(0) as usize,
            engine: self.engine.unwrap_or(EngineMode::Auto),
            experiments: self.experiments.unwrap_or_default(),
            journal: self.journal.map(PathBuf::from),
            max_retries: self.max_retries.unwrap_or(0) as usize,
            fault: self.fault,
            fill_threads: self.fill_threads,
        })
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_value(text: &str) -> Result<Field, String> {
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or("unterminated array (arrays must be single-line)")?
            .trim();
        if inner.is_empty() {
            return Ok(Field::Ints(Vec::new()));
        }
        let items: Vec<&str> = inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if items.iter().all(|s| s.starts_with('"')) {
            let strs = items
                .into_iter()
                .map(parse_toml_string)
                .collect::<Result<_, _>>()?;
            return Ok(Field::Strs(strs));
        }
        let ints = items
            .into_iter()
            .map(|s| {
                s.replace('_', "")
                    .parse()
                    .map_err(|_| format!("invalid integer {s:?}"))
            })
            .collect::<Result<_, _>>()?;
        return Ok(Field::Ints(ints));
    }
    if text.starts_with('"') {
        return parse_toml_string(text).map(Field::Str);
    }
    text.replace('_', "")
        .parse()
        .map(Field::Int)
        .map_err(|_| format!("invalid value {text:?}"))
}

fn parse_toml_string(text: &str) -> Result<String, String> {
    text.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(String::from)
        .ok_or(format!("invalid string {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
# The epidemic sweep of Table 1.
name = "epidemic"            # sweep name
master_seed = 7
sizes = [1_000, 10_000]
trials = 20
threads = 8
engine = "batched"
experiments = ["epidemic_full", "epidemic_sub3"]
journal = "results/epidemic.jsonl"
"#;

    #[test]
    fn parses_toml() {
        let spec = SweepSpec::parse_str(TOML).unwrap();
        assert_eq!(spec.name, "epidemic");
        assert_eq!(spec.master_seed, 7);
        assert_eq!(spec.sizes, vec![1_000, 10_000]);
        assert_eq!(spec.trials, 20);
        assert_eq!(spec.threads, 8);
        assert_eq!(spec.engine, EngineMode::Batched);
        assert_eq!(spec.experiments, vec!["epidemic_full", "epidemic_sub3"]);
        assert_eq!(spec.journal, Some(PathBuf::from("results/epidemic.jsonl")));
    }

    #[test]
    fn parses_equivalent_json() {
        let json_text = r#"{
            "name": "epidemic", "master_seed": 7, "sizes": [1000, 10000],
            "trials": 20, "threads": 8, "engine": "batched",
            "experiments": ["epidemic_full", "epidemic_sub3"],
            "journal": "results/epidemic.jsonl"
        }"#;
        assert_eq!(
            SweepSpec::parse_str(json_text).unwrap(),
            SweepSpec::parse_str(TOML).unwrap()
        );
    }

    #[test]
    fn defaults_fill_optional_keys() {
        let spec = SweepSpec::parse_str("name = \"x\"\nsizes = [10]\ntrials = 3").unwrap();
        assert_eq!(spec.master_seed, 1);
        assert_eq!(spec.threads, 0);
        assert_eq!(spec.engine, EngineMode::Auto);
        assert!(spec.experiments.is_empty());
        assert!(spec.journal.is_none());
        assert_eq!(spec.max_retries, 0);
        assert!(spec.fault.is_none());
        assert!(spec.fill_threads.is_none());
    }

    #[test]
    fn parses_fill_threads_and_resolves_zero_to_serial() {
        let spec = SweepSpec::parse_str("name = \"x\"\nsizes = [10]\ntrials = 3\nfill_threads = 4")
            .unwrap();
        assert_eq!(spec.fill_threads, Some(4));
        assert_eq!(spec.effective_fill_threads(), Some(4));
        let serial =
            SweepSpec::parse_str("name = \"x\"\nsizes = [10]\ntrials = 3\nfill_threads = 0")
                .unwrap();
        assert_eq!(serial.fill_threads, Some(0));
        assert_eq!(
            serial.effective_fill_threads(),
            None,
            "0 = explicitly serial, even if PP_THREADS were set"
        );
    }

    #[test]
    fn parses_robustness_keys() {
        let spec = SweepSpec::parse_str(
            "name = \"x\"\nsizes = [10]\ntrials = 3\nmax_retries = 2\nfault = \"kill@5\"",
        )
        .unwrap();
        assert_eq!(spec.max_retries, 2);
        assert_eq!(spec.fault.as_deref(), Some("kill@5"));
    }

    #[test]
    fn rejects_invalid_fault_plans() {
        let err = SweepSpec::parse_str("name = \"x\"\nsizes = [10]\ntrials = 3\nfault = \"boom\"")
            .unwrap_err();
        assert!(err.contains("fault plan"), "{err}");
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(SweepSpec::parse_str("sizes = [10]\ntrials = 3").is_err());
        assert!(SweepSpec::parse_str("name = \"x\"\nsizes = []\ntrials = 3").is_err());
        assert!(SweepSpec::parse_str("name = \"x\"\nsizes = [10]\ntrials = 0").is_err());
        assert!(SweepSpec::parse_str("name = \"x\"\nsizes = [10]\ntrials = 3\nbogus = 1").is_err());
        assert!(
            SweepSpec::parse_str("name = \"x\"\nsizes = [10]\ntrials = 3\nengine = \"warp\"")
                .is_err()
        );
    }

    #[test]
    fn trials_cap_reduces_but_never_zeroes() {
        assert_eq!(apply_trials_cap(20, None), 20);
        assert_eq!(apply_trials_cap(20, Some(5)), 5);
        assert_eq!(apply_trials_cap(3, Some(100)), 3);
        assert_eq!(apply_trials_cap(20, Some(0)), 1);
    }

    #[test]
    fn comment_stripping_respects_strings() {
        let spec = SweepSpec::parse_str("name = \"a#b\" # real comment\nsizes = [10]\ntrials = 1")
            .unwrap();
        assert_eq!(spec.name, "a#b");
    }
}
