//! Terminating size estimation with an initial leader (§3.4, Theorem 3.13).
//!
//! Theorem 4.1 forbids high-probability termination for uniform protocols
//! whose initial configurations are dense — but a single initial leader
//! breaks density, and then termination *is* possible. The leader runs the
//! main protocol like everyone else, plus a leader-local clock: it counts
//! its own interactions against a threshold `Θ(logSize2²)`, sized so that
//! the main protocol has converged w.h.p. before the count is reached
//! (the main protocol runs `5·logSize2` epochs of `95·logSize2` interactions
//! each, i.e. the leader witnesses `≈ 475·logSize2²` interactions before
//! convergence — the default multiplier 2000 leaves a > 4× margin). When the
//! clock fires, the leader raises a `terminated` flag that spreads by
//! epidemic and freezes every agent it reaches.
//!
//! The paper drives the leader's clock with the Angluin et al. \[9\] phase
//! clock; we use the leader's own interaction counter, which concentrates by
//! the same Chernoff argument (Lemma 3.6 applied to a single agent — no
//! union bound needed) and keeps the same `O(log² n)` time and `O(log⁴ n)`
//! state bounds. The substitution is recorded in DESIGN.md.
//!
//! The leader resets its clock whenever its `logSize2` is restarted, so the
//! count that ultimately fires is paced by the settled estimate.

use pp_engine::rng::SimRng;
use pp_engine::simulation::SimMode;
use pp_engine::{EngineMode, Protocol, Simulation};

use crate::log_size::LogSizeEstimation;
use crate::phase_clock::LeaderClock;
use crate::state::MainState;

/// Per-agent state of the terminating variant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaderState {
    /// Embedded main-protocol state.
    pub main: MainState,
    /// Whether this agent is the (unique) initial leader.
    pub is_leader: bool,
    /// The leader's interaction clock (unused by non-leaders).
    pub clock: LeaderClock,
    /// The termination flag (spread by epidemic; freezes the agent).
    pub terminated: bool,
}

impl LeaderState {
    /// A non-leader initial state.
    pub fn initial() -> Self {
        Self {
            main: MainState::initial(),
            is_leader: false,
            clock: LeaderClock::new(),
            terminated: false,
        }
    }

    /// The leader's initial state.
    pub fn leader() -> Self {
        Self {
            is_leader: true,
            ..Self::initial()
        }
    }
}

/// The terminating protocol of Theorem 3.13.
#[derive(Debug, Clone, Copy)]
pub struct LeaderTerminating {
    /// The embedded estimator.
    pub fast: LogSizeEstimation,
    /// Termination threshold as a multiple of `logSize2²` (default 2000).
    pub termination_multiplier: u64,
}

impl Default for LeaderTerminating {
    fn default() -> Self {
        Self {
            fast: LogSizeEstimation::paper(),
            termination_multiplier: 2000,
        }
    }
}

impl LeaderTerminating {
    /// The paper's configuration (with our counter-based leader clock).
    pub fn paper() -> Self {
        Self::default()
    }

    fn threshold(&self, s: &MainState) -> u64 {
        self.termination_multiplier * s.log_size2 * s.log_size2
    }
}

impl Protocol for LeaderTerminating {
    type State = LeaderState;

    fn initial_state(&self) -> LeaderState {
        LeaderState::initial()
    }

    fn interact(&self, rec: &mut LeaderState, sen: &mut LeaderState, rng: &mut SimRng) {
        // Termination epidemic: a terminated agent freezes its partner too.
        if rec.terminated || sen.terminated {
            rec.terminated = true;
            sen.terminated = true;
            return;
        }
        let rec_ls_before = rec.main.log_size2;
        let sen_ls_before = sen.main.log_size2;
        self.fast.interact(&mut rec.main, &mut sen.main, rng);
        for (agent, before) in [(&mut *rec, rec_ls_before), (&mut *sen, sen_ls_before)] {
            if agent.is_leader {
                if agent.main.log_size2 != before {
                    // The estimate improved: the previous pacing was wrong.
                    agent.clock.reset();
                }
                agent.clock.tick(self.threshold(&agent.main));
                if agent.clock.fired {
                    agent.terminated = true;
                }
            }
        }
        if rec.terminated || sen.terminated {
            rec.terminated = true;
            sen.terminated = true;
        }
    }
}

/// Outcome of a terminating run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TerminatingOutcome {
    /// Parallel time at which the leader fired the termination signal.
    pub termination_time: f64,
    /// Parallel time by which every agent was frozen.
    pub all_frozen_time: f64,
    /// The estimate held by the most agents at termination (`None` if the
    /// run's main protocol had not produced outputs yet — a failure).
    pub output: Option<u64>,
    /// Fraction of agents whose output was present and equal to `output` at
    /// the freeze.
    pub agreement: f64,
    /// Whether the signal fired within the budget.
    pub terminated: bool,
}

/// Runs the terminating protocol: population of `n` with one planted leader.
///
/// Runs on the unified count engine ([`EngineMode::Auto`]): the planted
/// leader becomes a *non-uniform initial configuration* (one
/// [`LeaderState::leader`] agent among `n - 1` followers), and the
/// interner GC keeps the state table at live-support size even though the
/// per-interaction counters inside the states churn out fresh records
/// constantly — the frozen termination epidemic additionally rides the
/// interner's null fast path. Use [`run_terminating_agentwise`] to pin
/// the per-agent engine for cross-engine validation.
pub fn run_terminating(n: usize, seed: u64, max_time: f64) -> TerminatingOutcome {
    terminating_in_mode(n, seed, max_time, EngineMode::Auto.into())
}

/// [`run_terminating`] — the count engine is the default now, so this is
/// the same run; retained for callers written against the pre-GC surface,
/// where the count engine was the opt-in.
pub fn run_terminating_counted(n: usize, seed: u64, max_time: f64) -> TerminatingOutcome {
    terminating_in_mode(n, seed, max_time, EngineMode::Auto.into())
}

/// [`run_terminating`] pinned to the per-agent engine: one record per
/// agent, no interning. The statistical-equivalence suite holds this and
/// the count-engine default to the same law; protocol-property tests that
/// don't care about engine selection also use it, as the per-agent array
/// is faster at the small populations they run.
pub fn run_terminating_agentwise(n: usize, seed: u64, max_time: f64) -> TerminatingOutcome {
    terminating_in_mode(n, seed, max_time, SimMode::Agent)
}

/// The one builder invocation behind every terminating run: two predicate
/// phases ("the signal fired" → "everyone froze") over one absolute time
/// budget, differing only in engine mode. Public as the registry's
/// engine-selection hook.
pub fn terminating_in_mode(
    n: usize,
    seed: u64,
    max_time: f64,
    mode: SimMode,
) -> TerminatingOutcome {
    let mut sim = Simulation::builder(LeaderTerminating::paper())
        .size(n as u64)
        .seed(seed)
        .mode(mode)
        .init_planted([(LeaderState::leader(), 1)])
        .build();
    let fired = sim.run_until(|view| view.iter().any(|(s, _)| s.terminated), max_time);
    if !fired.converged {
        return TerminatingOutcome {
            termination_time: fired.time,
            all_frozen_time: fired.time,
            output: None,
            agreement: 0.0,
            terminated: false,
        };
    }
    let termination_time = fired.time;
    let frozen = sim.run_until(|view| view.iter().all(|(s, _)| s.terminated), max_time);
    // Majority output among agents (count-weighted).
    let mut counts = std::collections::BTreeMap::new();
    for (s, k) in sim.view() {
        if let Some(o) = s.main.output {
            *counts.entry(o).or_insert(0u64) += k;
        }
    }
    finish_outcome(counts, n, termination_time, frozen.time)
}

fn finish_outcome(
    counts: std::collections::BTreeMap<u64, u64>,
    n: usize,
    termination_time: f64,
    all_frozen_time: f64,
) -> TerminatingOutcome {
    let (output, agreement) = counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map(|(o, c)| (Some(o), c as f64 / n as f64))
        .unwrap_or((None, 0.0));
    TerminatingOutcome {
        termination_time,
        all_frozen_time,
        output,
        agreement,
        terminated: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_terminates_after_convergence() {
        // The default engine (count + interner GC) end to end.
        let n = 100;
        let out = run_terminating(n, 31, 5_000_000.0);
        assert!(out.terminated, "leader never fired");
        let k = out.output.expect("outputs should exist at termination");
        let logn = (n as f64).log2();
        assert!(
            (k as f64 - logn).abs() <= 5.7,
            "estimate {k} outside band around {logn}"
        );
        assert!(
            out.agreement > 0.9,
            "only {} of agents agreed at termination",
            out.agreement
        );
        assert!(out.all_frozen_time >= out.termination_time);
    }

    #[test]
    fn termination_time_exceeds_convergence_time() {
        // The whole point: the signal must not fire before the estimate has
        // converged. Compare with the non-terminating protocol's convergence
        // time on the same n.
        // Agent engine: a protocol-property check, and the faster engine
        // at this population size (cross-engine equivalence is covered by
        // `tests/unified_equivalence.rs`).
        let n = 120;
        let conv = crate::log_size::estimate_agentwise(
            crate::log_size::LogSizeEstimation::paper(),
            n,
            77,
            None,
        );
        assert!(conv.converged);
        let term = run_terminating_agentwise(n, 78, 5_000_000.0);
        assert!(term.terminated);
        assert!(
            term.termination_time > conv.time,
            "terminated at {} before typical convergence {}",
            term.termination_time,
            conv.time
        );
    }

    #[test]
    fn no_leader_means_no_termination() {
        // Without the planted leader nobody counts, so the signal never
        // fires — the protocol is exactly the converging one.
        let (out, _) = Simulation::builder(LeaderTerminating::paper())
            .size(100)
            .seed(5)
            .max_time(2_000.0)
            .until(|view: &[(LeaderState, u64)]| view.iter().any(|(a, _)| a.terminated))
            .run();
        assert!(!out.converged);
    }

    #[test]
    fn termination_epidemic_freezes_everyone() {
        // Agent engine (protocol property; see above).
        let out = run_terminating_agentwise(100, 41, 5_000_000.0);
        assert!(out.terminated);
        // Freeze should complete within ~O(log n) time of the signal.
        let spread = out.all_frozen_time - out.termination_time;
        assert!(spread < 100.0, "termination epidemic took {spread}");
    }

    #[test]
    fn frozen_pair_stays_frozen() {
        let p = LeaderTerminating::paper();
        let mut a = LeaderState::initial();
        a.terminated = true;
        a.main.epoch = 3;
        let mut b = LeaderState::initial();
        b.main.epoch = 7;
        let mut rng = pp_engine::rng::rng_from_seed(0);
        p.interact(&mut a, &mut b, &mut rng);
        assert!(b.terminated, "termination must spread");
        assert_eq!(a.main.epoch, 3, "frozen state must not change");
        assert_eq!(b.main.epoch, 7, "frozen state must not change");
    }
}
