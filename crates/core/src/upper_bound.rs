//! Probability-1 upper bound on `log n` (§3.3).
//!
//! The fast estimator can err in either direction with small probability.
//! For applications where an upper bound on `log n` suffices (correctness
//! needs `k ≥ log n`; being too large only costs speed), the paper runs a
//! slow **exact backup** alongside:
//!
//! ```text
//! l_i, l_i -> l_{i+1}, f_{i+1}        (level leaders merge upward)
//! f_i, f_j -> f_i, f_i   for j < i    (followers adopt the max index)
//! ```
//!
//! starting from all `l_0`. The merge dynamics compute the binary expansion
//! of `n`: level-`i` leaders pair up and carry; the maximum level ever
//! created is exactly `⌊log2 n⌋`, reached with probability 1 in `O(n)`
//! time. Every agent additionally tracks `kex` = the largest subscript it
//! has ever observed (leader or follower), which converges to `⌊log2 n⌋`
//! by epidemic.
//!
//! The combined output at any moment is `max(k_fast + 4, kex + 1)`:
//!
//! * `k_fast + 4` — the fast estimate shifted by the paper's 3.7 (rounded
//!   up to the next integer), which is `≥ log n` w.h.p.;
//! * `kex + 1 ≥ ⌊log2 n⌋ + 1 ≥ log2 n` — the probability-1 safety net.
//!
//! W.h.p. the reported value is also `≤ log n + 9.7` (5.7 + 4).

use pp_engine::rng::SimRng;
use pp_engine::Protocol;

use crate::log_size::{is_converged_counts, LogSizeEstimation};
use crate::state::MainState;

/// Per-agent state: the main protocol's state plus the backup counter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UpperBoundState {
    /// Embedded main-protocol state.
    pub main: MainState,
    /// Backup level subscript (of `l_level` or `f_level`).
    pub level: u64,
    /// Whether this agent has become a follower (`f`) in the backup.
    pub follower: bool,
    /// Largest subscript ever observed (own or partner's).
    pub kex: u64,
}

impl UpperBoundState {
    /// Initial state: main initial + backup `l_0`.
    pub fn initial() -> Self {
        Self {
            main: MainState::initial(),
            level: 0,
            follower: false,
            kex: 0,
        }
    }

    /// The reported value `max(k_fast + 4, kex + 1)`; `kex + 1` alone until
    /// the fast estimate exists.
    pub fn report(&self) -> u64 {
        let safety = self.kex + 1;
        match self.main.output {
            Some(k) => (k + 4).max(safety),
            None => safety,
        }
    }
}

/// The §3.3 combined protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpperBoundEstimation {
    /// The embedded fast estimator.
    pub fast: LogSizeEstimation,
}

impl UpperBoundEstimation {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            fast: LogSizeEstimation::paper(),
        }
    }

    fn backup(&self, a: &mut UpperBoundState, b: &mut UpperBoundState) {
        if !a.follower && !b.follower && a.level == b.level {
            // l_i, l_i -> l_{i+1}, f_{i+1}
            a.level += 1;
            b.level = a.level;
            b.follower = true;
        } else if a.follower && b.follower && a.level != b.level {
            // f_i, f_j -> f_i, f_i for the larger index
            let m = a.level.max(b.level);
            a.level = m;
            b.level = m;
        }
        // kex bookkeeping: every agent remembers the largest subscript seen.
        let m = a.kex.max(b.kex).max(a.level).max(b.level);
        a.kex = m;
        b.kex = m;
    }
}

impl Protocol for UpperBoundEstimation {
    type State = UpperBoundState;

    fn initial_state(&self) -> UpperBoundState {
        UpperBoundState::initial()
    }

    fn interact(&self, rec: &mut UpperBoundState, sen: &mut UpperBoundState, rng: &mut SimRng) {
        self.fast.interact(&mut rec.main, &mut sen.main, rng);
        self.backup(rec, sen);
    }
}

/// Outcome of an upper-bound run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UpperBoundOutcome {
    /// The common report `max(k_fast + 4, kex + 1)` after stabilization.
    pub report: u64,
    /// The settled backup value `kex` (should equal `⌊log2 n⌋`).
    pub kex: u64,
    /// Parallel time until the fast component converged.
    pub fast_time: f64,
    /// Whether the fast component converged within its budget.
    pub fast_converged: bool,
}

/// Runs the combined protocol: the fast component to convergence, then
/// continues until the backup stabilizes (`kex` common to all agents and
/// unchanged over an `extra_time` window).
pub fn estimate_upper_bound(n: usize, seed: u64, extra_time: f64) -> UpperBoundOutcome {
    let budget = 4.0 * pp_analysis::subexp::corollary_3_10_time_budget(n as u64);
    let mut sim = pp_engine::Simulation::builder(UpperBoundEstimation::paper())
        .size(n as u64)
        .seed(seed)
        .build();
    let out = sim.run_until(
        |view| {
            let mains: Vec<(MainState, u64)> =
                view.iter().map(|(s, c)| (s.main.clone(), *c)).collect();
            is_converged_counts(&mains)
        },
        budget,
    );
    // Let the backup finish its O(n)-time merges.
    sim.run_for_time(extra_time);
    let view = sim.view();
    let kex = view.iter().map(|(s, _)| s.kex).max().unwrap_or(0);
    let report = view.iter().map(|(s, _)| s.report()).max().unwrap_or(0);
    UpperBoundOutcome {
        report,
        kex,
        fast_time: out.time,
        fast_converged: out.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::rng::rng_from_seed;

    #[test]
    fn backup_merge_rule() {
        let p = UpperBoundEstimation::paper();
        let mut a = UpperBoundState::initial();
        let mut b = UpperBoundState::initial();
        p.backup(&mut a, &mut b);
        assert_eq!(a.level, 1);
        assert!(!a.follower);
        assert_eq!(b.level, 1);
        assert!(b.follower);
        assert_eq!(a.kex, 1);
        assert_eq!(b.kex, 1);
    }

    #[test]
    fn followers_adopt_max() {
        let p = UpperBoundEstimation::paper();
        let mut a = UpperBoundState::initial();
        a.follower = true;
        a.level = 2;
        let mut b = UpperBoundState::initial();
        b.follower = true;
        b.level = 5;
        p.backup(&mut a, &mut b);
        assert_eq!(a.level, 5);
        assert_eq!(b.level, 5);
    }

    #[test]
    fn leaders_at_different_levels_do_not_merge() {
        let p = UpperBoundEstimation::paper();
        let mut a = UpperBoundState::initial();
        a.level = 1;
        let mut b = UpperBoundState::initial();
        b.level = 2;
        p.backup(&mut a, &mut b);
        assert_eq!(a.level, 1);
        assert_eq!(b.level, 2);
        assert!(!a.follower && !b.follower);
        assert_eq!(a.kex, 2, "kex still learns the larger subscript");
    }

    /// Run only the backup dynamics (via the full protocol, ignoring main
    /// fields) and check `kex` converges to `⌊log2 n⌋`.
    #[test]
    fn backup_computes_floor_log2_n() {
        for (n, expect) in [(64usize, 6u64), (100, 6), (200, 7)] {
            let p = UpperBoundEstimation::paper();
            let mut states: Vec<UpperBoundState> =
                (0..n).map(|_| UpperBoundState::initial()).collect();
            let mut rng = rng_from_seed(n as u64);
            // Drive only the backup: pick random pairs directly.
            use rand::Rng;
            for _ in 0..(200 * n * n.ilog2() as usize) {
                let i = rng.gen_range(0..n);
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let (lo, hi) = (i.min(j), i.max(j));
                let (left, right) = states.split_at_mut(hi);
                p.backup(&mut left[lo], &mut right[0]);
            }
            let kex = states.iter().map(|s| s.kex).max().unwrap();
            assert_eq!(kex, expect, "n={n}");
            assert!(
                states.iter().all(|s| s.kex == expect),
                "kex not yet common at n={n}"
            );
        }
    }

    #[test]
    fn combined_report_upper_bounds_log_n() {
        let n = 150;
        let out = estimate_upper_bound(n, 21, 4000.0);
        assert!(out.fast_converged);
        let logn = (n as f64).log2();
        assert!(
            out.report as f64 >= logn,
            "report {} below log n = {logn}",
            out.report
        );
        assert!(
            out.report as f64 <= logn + 10.0,
            "report {} far above log n = {logn}",
            out.report
        );
        assert_eq!(out.kex, (n as f64).log2().floor() as u64);
    }

    #[test]
    fn report_prefers_larger_component() {
        let mut s = UpperBoundState::initial();
        s.kex = 10;
        assert_eq!(s.report(), 11, "safety net alone");
        s.main.output = Some(20);
        assert_eq!(s.report(), 24, "fast + 4 dominates");
        s.kex = 30;
        assert_eq!(s.report(), 31, "safety net dominates");
    }
}
