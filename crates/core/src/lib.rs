//! # pp-core — the paper's uniform size-estimation protocols
//!
//! *Layer 1 (protocols) of the five-layer workspace — see `ARCHITECTURE.md` at the
//! repository root for the layer map and the three determinism
//! invariants every layer is held to.*
//!
//! This crate implements the central contribution of Doty & Eftekhari,
//! *"Efficient size estimation and impossibility of termination in uniform
//! dense population protocols"* (PODC 2019):
//!
//! * [`log_size`] — the main `Log-Size-Estimation` protocol (Protocol 1 and
//!   Subprotocols 2–9): a uniform leaderless protocol computing
//!   `log2(n) ± 5.7` w.h.p. in `O(log² n)` time and `O(log⁴ n)` states.
//! * [`synthetic`] — the Appendix B variant with **no** access to random
//!   bits: agents harvest fair coins from the scheduler's receiver/sender
//!   choice via a dedicated flipper subpopulation (Protocols 10–19).
//! * [`upper_bound`] — the §3.3 probability-1 upper bound: a slow exact
//!   backup (`l_i, l_i -> l_{i+1}, f_{i+1}`) combined with the fast estimate
//!   so the reported value is `≥ log n` with probability 1 while staying
//!   `log n + O(1)` w.h.p.
//! * [`leader`] — the §3.4 terminating variant with an initial leader
//!   (Theorem 3.13): the only setting where high-probability termination is
//!   possible (Theorem 4.1 forbids it for dense leaderless starts).
//! * [`phase_clock`] — the leaderless phase clock (each agent counts its own
//!   interactions against a `95·logSize2` threshold; Lemma 3.6 justifies the
//!   constant) and the leader-driven variant.
//! * [`composition`] — the §1.1 restart-based composition framework that
//!   "uniformizes" downstream nonuniform protocols: run the weak size
//!   estimate, pace the downstream protocol's stages with the leaderless
//!   phase clock, and restart everything whenever the estimate improves.
//! * [`state`] — the agent state record shared by the protocol variants.
//!
//! ## Pseudocode fidelity notes
//!
//! Two small repairs to the paper's pseudocode were needed to make it
//! executable; both are behaviour the analysis assumes:
//!
//! 1. Subprotocol 6 tests `time = 95·logSize2` (equality), but `time` keeps
//!    incrementing while the agent waits to deliver its `gr` to a role-S
//!    agent (`updatedSUM` only becomes true on that later interaction), so
//!    with strict equality the epoch can never advance. We use `>=`, which is
//!    what the companion condition in Subprotocol 9 (`a.time ≥
//!    95·a.logSize2`) already does.
//! 2. Two role-S agents in the *same* epoch may hold different `sum`s
//!    (each received its epoch-`e` delivery from a different role-A agent,
//!    possibly before `gr` finished propagating). Subprotocol 7 only
//!    reconciles *different* epochs; we break the tie by taking the max
//!    `sum`, which realizes the probability-1 convergence claimed by
//!    Lemma 3.12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aae_clock;
pub mod composition;
pub mod leader;
pub mod log_size;
pub mod partition;
pub mod phase_clock;
pub mod state;
pub mod synthetic;
pub mod synthetic_alternating;
pub mod trace;
pub mod upper_bound;

pub use log_size::{estimate_log_size, EstimateOutcome, LogSizeEstimation};
pub use state::{MainState, Role};
