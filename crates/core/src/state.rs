//! The agent state record of `Log-Size-Estimation` (Protocol 1).
//!
//! Each agent's memory is a constant number of integer fields — the paper's
//! TM formalization stores them on the working tape; we store them in a
//! struct. Lemma 3.9 bounds the range each field takes w.h.p., which is
//! what makes the state complexity `O(log⁴ n)`:
//!
//! | field      | w.h.p. range            |
//! |------------|-------------------------|
//! | `logSize2` | `{1, ..., 2 log n + 1}` |
//! | `gr`       | `{1, ..., 2 log n}`     |
//! | `time`     | `{0, ..., 191 log n}`   |
//! | `epoch`    | `{0, ..., 11 log n}`    |
//! | `sum`      | `{0, ..., 22 log² n}`   |

/// The role an agent holds after the `Partition-Into-A/S` subprotocol.
///
/// Role `A` agents drive the algorithm (generate geometric random variables,
/// propagate maxima, run the phase clock); role `S` agents contribute their
/// memory to store the running `sum` — the paper's *space multiplexing*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// No role yet (every agent's initial state).
    X,
    /// Algorithm agent.
    A,
    /// Storage agent.
    S,
}

/// Full per-agent state of the main protocol.
///
/// Field names follow the pseudocode (`logSize2` → `log_size2`, etc.).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MainState {
    /// Current role (`X` until partitioned).
    pub role: Role,
    /// Interaction counter within the current epoch (the leaderless phase
    /// clock).
    pub time: u64,
    /// Accumulated sum of per-epoch maximum geometric variables (role S).
    pub sum: u64,
    /// Current epoch index. For role S this counts received deliveries.
    pub epoch: u64,
    /// This epoch's geometric random variable (role A), merged to the
    /// epoch maximum by `Propagate-Max-G.R.V.`.
    pub gr: u64,
    /// The initial size estimate: a geometric random variable plus 2
    /// (Lemma 3.8's adjustment), merged to the population maximum.
    pub log_size2: u64,
    /// True once the agent has finished all `5·logSize2` epochs.
    pub protocol_done: bool,
    /// True once this epoch's `gr` has been delivered to (or superseded by)
    /// a role-S agent.
    pub updated_sum: bool,
    /// The final output `sum/epoch + 1`, once known.
    pub output: Option<u64>,
}

impl MainState {
    /// The common initial state: no role, all counters zero.
    pub fn initial() -> Self {
        Self {
            role: Role::X,
            time: 0,
            sum: 0,
            epoch: 0,
            gr: 1,
            log_size2: 1,
            protocol_done: false,
            updated_sum: false,
            output: None,
        }
    }

    /// `Restart` (Subprotocol 4): resets all downstream computation after
    /// adopting a larger `logSize2`. `gr` is resampled by the caller (it
    /// needs the RNG).
    pub fn restart(&mut self) {
        self.time = 0;
        self.sum = 0;
        self.epoch = 0;
        self.protocol_done = false;
        self.updated_sum = false;
        self.output = None;
    }

    /// The phase-clock threshold for this agent: `95 · logSize2`
    /// (Corollary 3.7 bounds interactions per epidemic by `65 ln n ≤ 94 log
    /// n`, rounded up to 95).
    pub fn clock_threshold(&self, multiplier: u64) -> u64 {
        multiplier * self.log_size2
    }

    /// The epoch target `K = 5 · logSize2` (Corollary A.4 needs `K ≥ 4 log
    /// n`).
    pub fn epoch_target(&self, multiplier: u64) -> u64 {
        multiplier * self.log_size2
    }

    /// The output value from accumulated `(sum, epoch)`:
    /// `round(sum/epoch) + 1` (Lemma 3.11's `sum/K + 1` convention).
    /// Returns `None` when no epochs have completed.
    pub fn computed_output(&self) -> Option<u64> {
        if self.epoch == 0 {
            None
        } else {
            let avg = self.sum as f64 / self.epoch as f64;
            Some((avg + 1.0).round() as u64)
        }
    }
}

impl Default for MainState {
    fn default() -> Self {
        Self::initial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_matches_pseudocode() {
        let s = MainState::initial();
        assert_eq!(s.role, Role::X);
        assert_eq!(s.time, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.epoch, 0);
        assert_eq!(s.gr, 1);
        assert_eq!(s.log_size2, 1);
        assert!(!s.protocol_done);
        assert!(s.output.is_none());
    }

    #[test]
    fn restart_clears_downstream_but_keeps_identity() {
        let mut s = MainState {
            role: Role::A,
            time: 100,
            sum: 50,
            epoch: 7,
            gr: 3,
            log_size2: 12,
            protocol_done: true,
            updated_sum: true,
            output: Some(11),
        };
        s.restart();
        assert_eq!(s.role, Role::A, "role survives restart");
        assert_eq!(s.log_size2, 12, "logSize2 survives restart");
        assert_eq!(s.time, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.epoch, 0);
        assert!(!s.protocol_done);
        assert!(!s.updated_sum);
        assert!(s.output.is_none());
    }

    #[test]
    fn thresholds_scale_with_logsize2() {
        let mut s = MainState::initial();
        s.log_size2 = 10;
        assert_eq!(s.clock_threshold(95), 950);
        assert_eq!(s.epoch_target(5), 50);
    }

    #[test]
    fn computed_output_rounds() {
        let mut s = MainState::initial();
        assert_eq!(s.computed_output(), None);
        s.sum = 70;
        s.epoch = 10;
        assert_eq!(s.computed_output(), Some(8)); // 7 + 1
        s.sum = 75; // 7.5 + 1 = 8.5 → rounds to 8 (ties-to-even is fine: .5
                    // rounds away from zero with f64::round, giving 9)
        assert_eq!(s.computed_output(), Some(9));
    }

    #[test]
    fn roles_order_for_count_maps() {
        assert!(Role::X < Role::A && Role::A < Role::S);
    }
}
