//! The synthetic-coin variant: size estimation with **no** random bits
//! (Appendix B, Protocols 10–19).
//!
//! The main protocol assumes agents can flip fair coins. This variant
//! derives every coin flip from the scheduler itself: the population splits
//! into *algorithm* agents (role A) and *flipper* agents (role F); when an A
//! meets an F, the A is the sender or the receiver with probability exactly
//! 1/2 each — a perfect fair coin (the technique of Sudo et al. \[39\]).
//!
//! Geometric random variables are therefore generated *incrementally*: an A
//! agent increments its variable each time it is the **sender** in an A–F
//! meeting ("tails") and finalizes it the first time it is the **receiver**
//! ("heads"). Everything else mirrors the main protocol, with two
//! structural differences:
//!
//! * There are no storage agents: each A agent accumulates its **own**
//!   `sum` of per-epoch maxima (Subprotocol 19), so per-agent outputs agree
//!   only up to the analysis's additive band rather than exactly. The state
//!   bound grows to `O(log⁶ n)` (Lemma B.5).
//! * Epoch advancement needs no delivery handshake: when the timer expires
//!   the agent adds its current `gr` to its own `sum` and moves on
//!   (Subprotocol 17).

use pp_engine::rng::SimRng;
use pp_engine::{Protocol, Simulation};

/// Roles of the synthetic-coin protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoinRole {
    /// Unassigned.
    X,
    /// Algorithm agent.
    A,
    /// Flipper agent (provides coins only).
    F,
}

/// Per-agent state of the synthetic-coin protocol (Protocol 10's fields).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SyntheticState {
    /// Current role.
    pub role: CoinRole,
    /// Interaction counter within the current epoch.
    pub time: u64,
    /// Running sum of per-epoch maxima (kept by each A agent).
    pub sum: u64,
    /// Current epoch.
    pub epoch: u64,
    /// This epoch's geometric variable, built one coin at a time.
    pub gr: u64,
    /// The clock seed, built one coin at a time (`+2` applied at
    /// completion, per Subprotocol 12).
    pub log_size2: u64,
    /// True once `log_size2` is finalized.
    pub log_size2_generated: bool,
    /// True once this epoch's `gr` is finalized.
    pub gr_generated: bool,
    /// True once all epochs are complete.
    pub protocol_done: bool,
    /// Final output `sum/epoch + 1`.
    pub output: Option<u64>,
}

impl SyntheticState {
    /// The common initial state.
    pub fn initial() -> Self {
        Self {
            role: CoinRole::X,
            time: 0,
            sum: 0,
            epoch: 0,
            gr: 1,
            log_size2: 1,
            log_size2_generated: false,
            gr_generated: false,
            protocol_done: false,
            output: None,
        }
    }

    /// Subprotocol 14: `Restart`.
    pub fn restart(&mut self) {
        self.time = 0;
        self.sum = 0;
        self.epoch = 0;
        self.gr = 1;
        self.gr_generated = false;
        self.protocol_done = false;
        self.output = None;
    }
}

/// The Appendix B protocol. The transition function is **deterministic** —
/// `interact` never touches the RNG; all randomness comes from the
/// scheduler's ordered pair choice.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticCoinEstimation {
    /// Phase-clock multiplier (paper: 95).
    pub clock_multiplier: u64,
    /// Epoch-count multiplier (paper: 5).
    pub epoch_multiplier: u64,
}

impl Default for SyntheticCoinEstimation {
    fn default() -> Self {
        Self {
            clock_multiplier: 95,
            epoch_multiplier: 5,
        }
    }
}

impl SyntheticCoinEstimation {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Subprotocol 11: `Partition-Into-A/F`.
    fn partition(&self, rec: &mut SyntheticState, sen: &mut SyntheticState) {
        match (sen.role, rec.role) {
            (CoinRole::X, CoinRole::X) => {
                sen.role = CoinRole::A;
                rec.role = CoinRole::F;
            }
            (CoinRole::A, CoinRole::X) => rec.role = CoinRole::F,
            (CoinRole::F, CoinRole::X) => rec.role = CoinRole::A,
            _ => {}
        }
    }

    /// Subprotocol 17: `Check-if-Timer-Done-and-Increment-Epoch` (with the
    /// same `>=` reading as the main protocol).
    fn check_timer(&self, agent: &mut SyntheticState) {
        if agent.time >= self.clock_multiplier * agent.log_size2 && !agent.protocol_done {
            agent.epoch += 1;
            self.update_sum(agent);
            if agent.epoch >= self.epoch_multiplier * agent.log_size2 {
                agent.protocol_done = true;
                if agent.epoch > 0 {
                    let avg = agent.sum as f64 / agent.epoch as f64;
                    agent.output = Some((avg + 1.0).round() as u64);
                }
            }
        }
    }

    /// Subprotocol 19: `Update-Sum` — accumulate own `gr`, reset for the
    /// next epoch.
    fn update_sum(&self, agent: &mut SyntheticState) {
        agent.sum += agent.gr;
        agent.time = 0;
        agent.gr = 1;
        agent.gr_generated = false;
    }

    /// Subprotocol 12: `Generate-Clock` — one synthetic coin toward
    /// `logSize2`. `a_is_sender` is the coin: sender = tails (increment),
    /// receiver = heads (finalize, `+2`).
    fn generate_clock(&self, a: &mut SyntheticState, a_is_sender: bool) {
        if a_is_sender {
            a.log_size2 += 1;
        } else {
            a.log_size2_generated = true;
            a.log_size2 += 2;
        }
    }

    /// Subprotocol 15: `Generate-G.R.V` — one synthetic coin toward `gr`.
    fn generate_grv(&self, a: &mut SyntheticState, a_is_sender: bool) {
        if a_is_sender {
            a.gr += 1;
        } else {
            a.gr_generated = true;
        }
    }

    /// Subprotocol 13: `Propagate-Max-Clock-Value` (restart on adoption).
    fn propagate_max_clock(&self, a: &mut SyntheticState, b: &mut SyntheticState) {
        if a.log_size2 < b.log_size2 {
            a.log_size2 = b.log_size2;
            a.restart();
        } else if b.log_size2 < a.log_size2 {
            b.log_size2 = a.log_size2;
            b.restart();
        }
    }

    /// Subprotocol 18: `Propagate-Incremented-Epoch` — the lagging agent
    /// banks its current `gr` and jumps forward.
    fn propagate_epoch(&self, a: &mut SyntheticState, b: &mut SyntheticState) {
        if a.epoch < b.epoch {
            a.epoch = b.epoch;
            self.update_sum(a);
            self.finish_if_target(a);
        } else if b.epoch < a.epoch {
            b.epoch = a.epoch;
            self.update_sum(b);
            self.finish_if_target(b);
        }
    }

    fn finish_if_target(&self, agent: &mut SyntheticState) {
        if agent.epoch >= self.epoch_multiplier * agent.log_size2 && !agent.protocol_done {
            agent.protocol_done = true;
            if agent.epoch > 0 {
                let avg = agent.sum as f64 / agent.epoch as f64;
                agent.output = Some((avg + 1.0).round() as u64);
            }
        }
    }

    /// Subprotocol 16: `Propagate-Max-G.R.V.` (same epoch only).
    fn propagate_max_grv(&self, a: &mut SyntheticState, b: &mut SyntheticState) {
        if a.epoch == b.epoch {
            let m = a.gr.max(b.gr);
            a.gr = m;
            b.gr = m;
        }
    }
}

impl Protocol for SyntheticCoinEstimation {
    type State = SyntheticState;

    fn initial_state(&self) -> SyntheticState {
        SyntheticState::initial()
    }

    fn interact(&self, rec: &mut SyntheticState, sen: &mut SyntheticState, _rng: &mut SimRng) {
        // Protocol 10, in pseudocode order. Note: no use of `_rng`.
        self.partition(rec, sen);
        if rec.role == CoinRole::A {
            rec.time += 1;
            self.check_timer(rec);
        }
        if sen.role == CoinRole::A {
            sen.time += 1;
            self.check_timer(sen);
        }
        // A–F meeting: harvest one synthetic coin.
        match (rec.role, sen.role) {
            (CoinRole::A, CoinRole::F) | (CoinRole::F, CoinRole::A) => {
                let a_is_sender = sen.role == CoinRole::A;
                let a = if a_is_sender { &mut *sen } else { &mut *rec };
                if !a.log_size2_generated {
                    self.generate_clock(a, a_is_sender);
                } else if !a.gr_generated {
                    self.generate_grv(a, a_is_sender);
                }
            }
            (CoinRole::A, CoinRole::A) => {
                // Propagation only among A agents whose values are final
                // (Protocol 10's guards; the `grGenerated` guard on clock
                // propagation reads as `logSize2Generated` — see crate
                // docs on pseudocode repairs).
                if rec.log_size2_generated && sen.log_size2_generated {
                    self.propagate_max_clock(rec, sen);
                }
                if rec.gr_generated && sen.gr_generated {
                    self.propagate_epoch(rec, sen);
                    self.propagate_max_grv(rec, sen);
                }
            }
            _ => {}
        }
        // Output epidemic: F agents (and stragglers) adopt any output.
        if rec.output.is_none() && sen.output.is_some() && rec.role == CoinRole::F {
            rec.output = sen.output;
        }
        if sen.output.is_none() && rec.output.is_some() && sen.role == CoinRole::F {
            sen.output = rec.output;
        }
    }
}

/// Result of a synthetic-coin run. Outputs are per-agent (no storage agents
/// reconcile them), so the result carries the min and max across agents.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SyntheticOutcome {
    /// Smallest output across agents.
    pub min_output: u64,
    /// Largest output across agents.
    pub max_output: u64,
    /// Parallel time at convergence.
    pub time: f64,
    /// Whether every agent obtained an output within the budget.
    pub converged: bool,
}

/// Runs the synthetic-coin protocol to convergence (every agent done/has an
/// output).
pub fn estimate_log_size_synthetic(n: usize, seed: u64, max_time: f64) -> SyntheticOutcome {
    let (out, sim) = Simulation::builder(SyntheticCoinEstimation::paper())
        .size(n as u64)
        .seed(seed)
        .max_time(max_time)
        .until(|view: &[(SyntheticState, u64)]| {
            view.iter().all(|(s, _)| match s.role {
                CoinRole::A => s.protocol_done && s.output.is_some(),
                CoinRole::F => s.output.is_some(),
                CoinRole::X => false,
            })
        })
        .run();
    let outputs: Vec<u64> = sim.view().iter().filter_map(|(s, _)| s.output).collect();
    let (min_output, max_output) = if outputs.is_empty() {
        (0, 0)
    } else {
        (
            *outputs.iter().min().unwrap(),
            *outputs.iter().max().unwrap(),
        )
    };
    SyntheticOutcome {
        min_output,
        max_output,
        time: out.time,
        converged: out.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_mirrors_main_protocol() {
        let p = SyntheticCoinEstimation::paper();
        let mut rec = SyntheticState::initial();
        let mut sen = SyntheticState::initial();
        p.partition(&mut rec, &mut sen);
        assert_eq!(sen.role, CoinRole::A);
        assert_eq!(rec.role, CoinRole::F);
    }

    #[test]
    fn clock_generation_is_geometric_plus_two() {
        let p = SyntheticCoinEstimation::paper();
        let mut a = SyntheticState::initial();
        a.role = CoinRole::A;
        // Three tails then heads: logSize2 = 1 + 3 + 2 = 6 = geometric(4)+2.
        for _ in 0..3 {
            p.generate_clock(&mut a, true);
        }
        assert!(!a.log_size2_generated);
        p.generate_clock(&mut a, false);
        assert!(a.log_size2_generated);
        assert_eq!(a.log_size2, 6);
    }

    #[test]
    fn grv_generation_counts_tails() {
        let p = SyntheticCoinEstimation::paper();
        let mut a = SyntheticState::initial();
        a.role = CoinRole::A;
        p.generate_grv(&mut a, true);
        p.generate_grv(&mut a, true);
        p.generate_grv(&mut a, false);
        assert!(a.gr_generated);
        assert_eq!(a.gr, 3, "two tails + the final heads = geometric 3");
    }

    #[test]
    fn restart_preserves_clock_seed() {
        let mut s = SyntheticState::initial();
        s.log_size2 = 9;
        s.log_size2_generated = true;
        s.sum = 40;
        s.epoch = 6;
        s.protocol_done = true;
        s.restart();
        assert_eq!(s.log_size2, 9);
        assert!(s.log_size2_generated);
        assert_eq!(s.sum, 0);
        assert_eq!(s.epoch, 0);
        assert!(!s.protocol_done);
    }

    #[test]
    fn deterministic_transition_never_consumes_rng() {
        // Two identical runs with different engine seeds but the same
        // scheduler sequence would be needed to prove this directly; instead
        // run the whole protocol and rely on the type-level fact that
        // `interact` ignores `rng`, checking convergence and the band.
        let n = 200;
        let out = estimate_log_size_synthetic(n, 3, 2_000_000.0);
        assert!(out.converged, "synthetic-coin run did not converge");
        let logn = (n as f64).log2();
        assert!(
            (out.min_output as f64) >= logn - 6.7 && (out.max_output as f64) <= logn + 6.7,
            "outputs [{}, {}] outside band around {logn}",
            out.min_output,
            out.max_output
        );
    }

    #[test]
    fn outputs_are_mutually_close() {
        // Per-agent sums differ, but all average the same epoch maxima — the
        // spread should be small.
        let out = estimate_log_size_synthetic(300, 9, 2_000_000.0);
        assert!(out.converged);
        assert!(
            out.max_output - out.min_output <= 4,
            "output spread {} too wide",
            out.max_output - out.min_output
        );
    }
}
