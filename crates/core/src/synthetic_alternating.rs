//! The alternating-role synthetic-coin variant (Appendix B, footnote 21).
//!
//! The A/F split of the main Appendix-B protocol leaves half the population
//! as pure coin-flippers; a downstream protocol that needs *every* agent to
//! participate (e.g. predicate computation with inputs on all agents)
//! cannot spare them. Footnote 21's remedy: **all agents count their
//! interactions mod 2, acting in the A role on even interactions and the F
//! role on odd ones**. Each agent therefore runs the full algorithm *and*
//! serves as a flipper, at a constant-factor slowdown, and the harvested
//! coins remain fair and independent of the algorithm's progress (the
//! scheduler's order choice is independent of everything else).

use pp_engine::rng::SimRng;
use pp_engine::{Protocol, Simulation};

/// Per-agent state: the Appendix-B fields plus the parity counter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AlternatingState {
    /// Interaction parity: acts as A when even, as F when odd.
    pub parity: u8,
    /// Interaction counter within the current epoch.
    pub time: u64,
    /// Running sum of per-epoch maxima.
    pub sum: u64,
    /// Current epoch.
    pub epoch: u64,
    /// This epoch's geometric variable, built coin by coin.
    pub gr: u64,
    /// The clock seed, built coin by coin (`+2` at completion).
    pub log_size2: u64,
    /// True once `log_size2` is finalized.
    pub log_size2_generated: bool,
    /// True once this epoch's `gr` is finalized.
    pub gr_generated: bool,
    /// True once all epochs are complete.
    pub protocol_done: bool,
    /// Final output `sum/epoch + 1`.
    pub output: Option<u64>,
}

impl AlternatingState {
    /// The common initial state.
    pub fn initial() -> Self {
        Self {
            parity: 0,
            time: 0,
            sum: 0,
            epoch: 0,
            gr: 1,
            log_size2: 1,
            log_size2_generated: false,
            gr_generated: false,
            protocol_done: false,
            output: None,
        }
    }

    /// Restart after adopting a larger `logSize2`.
    pub fn restart(&mut self) {
        self.time = 0;
        self.sum = 0;
        self.epoch = 0;
        self.gr = 1;
        self.gr_generated = false;
        self.protocol_done = false;
        self.output = None;
    }

    /// Whether this agent acts as an algorithm (A) agent this interaction.
    pub fn acts_as_a(&self) -> bool {
        self.parity.is_multiple_of(2)
    }
}

/// The alternating-role protocol. Deterministic transition function — all
/// randomness comes from the scheduler, as in Appendix B.
#[derive(Debug, Clone, Copy)]
pub struct AlternatingCoinEstimation {
    /// Phase-clock multiplier (paper: 95; doubled pacing is inherent since
    /// agents only act as A half the time — the threshold is on total
    /// interactions, so the default still works).
    pub clock_multiplier: u64,
    /// Epoch-count multiplier (paper: 5).
    pub epoch_multiplier: u64,
}

impl Default for AlternatingCoinEstimation {
    fn default() -> Self {
        Self {
            clock_multiplier: 95,
            epoch_multiplier: 5,
        }
    }
}

impl AlternatingCoinEstimation {
    /// The footnote-21 configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    fn check_timer(&self, agent: &mut AlternatingState) {
        if agent.time >= self.clock_multiplier * agent.log_size2 && !agent.protocol_done {
            agent.epoch += 1;
            self.bank_gr(agent);
            self.finish_if_target(agent);
        }
    }

    fn bank_gr(&self, agent: &mut AlternatingState) {
        agent.sum += agent.gr;
        agent.time = 0;
        agent.gr = 1;
        agent.gr_generated = false;
    }

    fn finish_if_target(&self, agent: &mut AlternatingState) {
        if agent.epoch >= self.epoch_multiplier * agent.log_size2 && !agent.protocol_done {
            agent.protocol_done = true;
            if agent.epoch > 0 {
                let avg = agent.sum as f64 / agent.epoch as f64;
                agent.output = Some((avg + 1.0).round() as u64);
            }
        }
    }

    /// One synthetic coin for the agent currently in the A role.
    /// `a_is_sender` = tails.
    fn harvest(&self, a: &mut AlternatingState, a_is_sender: bool) {
        if !a.log_size2_generated {
            if a_is_sender {
                a.log_size2 += 1;
            } else {
                a.log_size2_generated = true;
                a.log_size2 += 2;
            }
        } else if !a.gr_generated {
            if a_is_sender {
                a.gr += 1;
            } else {
                a.gr_generated = true;
            }
        }
    }

    fn propagate(&self, x: &mut AlternatingState, y: &mut AlternatingState) {
        // Clock-value epidemic with restart (only finalized values travel).
        if x.log_size2_generated && y.log_size2_generated {
            if x.log_size2 < y.log_size2 {
                x.log_size2 = y.log_size2;
                x.restart();
            } else if y.log_size2 < x.log_size2 {
                y.log_size2 = x.log_size2;
                y.restart();
            }
        }
        if x.gr_generated && y.gr_generated {
            // Epoch epidemic (lagging agent banks and jumps).
            if x.epoch < y.epoch {
                x.epoch = y.epoch;
                self.bank_gr(x);
                self.finish_if_target(x);
            } else if y.epoch < x.epoch {
                y.epoch = x.epoch;
                self.bank_gr(y);
                self.finish_if_target(y);
            }
            // Same-epoch gr maximum.
            if x.epoch == y.epoch {
                let m = x.gr.max(y.gr);
                x.gr = m;
                y.gr = m;
            }
        }
    }
}

impl Protocol for AlternatingCoinEstimation {
    type State = AlternatingState;

    fn initial_state(&self) -> AlternatingState {
        AlternatingState::initial()
    }

    fn interact(&self, rec: &mut AlternatingState, sen: &mut AlternatingState, _rng: &mut SimRng) {
        let rec_is_a = rec.acts_as_a();
        let sen_is_a = sen.acts_as_a();
        // Everyone counts every interaction (the leaderless phase clock).
        rec.time += 1;
        self.check_timer(rec);
        sen.time += 1;
        self.check_timer(sen);
        match (rec_is_a, sen_is_a) {
            (true, false) => self.harvest(rec, false), // A is the receiver: heads
            (false, true) => self.harvest(sen, true),  // A is the sender: tails
            (true, true) => self.propagate(rec, sen),
            (false, false) => {}
        }
        // Output epidemic so stragglers converge on some neighbour's value.
        if rec.protocol_done && rec.output.is_none() {
            rec.output = sen.output;
        }
        if sen.protocol_done && sen.output.is_none() {
            sen.output = rec.output;
        }
        rec.parity = rec.parity.wrapping_add(1);
        sen.parity = sen.parity.wrapping_add(1);
    }
}

/// Outcome of an alternating-role run (per-agent outputs, like Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlternatingOutcome {
    /// Smallest output across agents.
    pub min_output: u64,
    /// Largest output across agents.
    pub max_output: u64,
    /// Parallel time at convergence.
    pub time: f64,
    /// Whether every agent finished within the budget.
    pub converged: bool,
}

/// Runs the footnote-21 protocol to convergence.
pub fn estimate_log_size_alternating(n: usize, seed: u64, max_time: f64) -> AlternatingOutcome {
    let (out, sim) = Simulation::builder(AlternatingCoinEstimation::paper())
        .size(n as u64)
        .seed(seed)
        .max_time(max_time)
        .until(|view: &[(AlternatingState, u64)]| {
            view.iter()
                .all(|(s, _)| s.protocol_done && s.output.is_some())
        })
        .run();
    let outputs: Vec<u64> = sim.view().iter().filter_map(|(s, _)| s.output).collect();
    let (min_output, max_output) = if outputs.is_empty() {
        (0, 0)
    } else {
        (
            *outputs.iter().min().unwrap(),
            *outputs.iter().max().unwrap(),
        )
    };
    AlternatingOutcome {
        min_output,
        max_output,
        time: out.time,
        converged: out.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_alternates_roles() {
        let mut s = AlternatingState::initial();
        assert!(s.acts_as_a());
        s.parity = 1;
        assert!(!s.acts_as_a());
        s.parity = 2;
        assert!(s.acts_as_a());
    }

    #[test]
    fn harvest_builds_geometric_plus_two() {
        let p = AlternatingCoinEstimation::paper();
        let mut a = AlternatingState::initial();
        p.harvest(&mut a, true);
        p.harvest(&mut a, true);
        assert!(!a.log_size2_generated);
        p.harvest(&mut a, false);
        assert!(a.log_size2_generated);
        assert_eq!(a.log_size2, 5, "1 + 2 tails + 2 = geometric(3) + 2");
        // Next coins go to gr.
        p.harvest(&mut a, true);
        p.harvest(&mut a, false);
        assert!(a.gr_generated);
        assert_eq!(a.gr, 2);
    }

    #[test]
    fn all_agents_participate_and_converge() {
        let n = 200;
        let out = estimate_log_size_alternating(n, 17, 1e8);
        assert!(out.converged, "alternating variant did not converge");
        let logn = (n as f64).log2();
        assert!(
            (out.min_output as f64 - logn).abs() <= 6.7
                && (out.max_output as f64 - logn).abs() <= 6.7,
            "outputs [{}, {}] outside band around {logn}",
            out.min_output,
            out.max_output
        );
    }

    #[test]
    fn no_agent_is_a_pure_flipper() {
        // Unlike the A/F split, every agent must end with an output derived
        // from its own sum (not just adopted). Check all agents finished
        // with nonzero epochs.
        let (out, sim) = Simulation::builder(AlternatingCoinEstimation::paper())
            .size(150)
            .seed(23)
            .max_time(1e8)
            .until(|view: &[(AlternatingState, u64)]| {
                view.iter()
                    .all(|(s, _)| s.protocol_done && s.output.is_some())
            })
            .run();
        assert!(out.converged);
        assert!(
            sim.view().iter().all(|(s, _)| s.epoch > 0 && s.sum > 0),
            "some agent never ran the algorithm"
        );
    }

    #[test]
    fn deterministic_transition_ignores_rng() {
        // Same seed → same result is trivially true; the point is that the
        // protocol also converges at a pace comparable to the A/F variant.
        let a = estimate_log_size_alternating(100, 31, 1e8);
        let b = estimate_log_size_alternating(100, 31, 1e8);
        assert_eq!(a, b);
    }
}
