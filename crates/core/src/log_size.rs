//! The main `Log-Size-Estimation` protocol (Protocol 1, Subprotocols 2–9).
//!
//! A uniform leaderless protocol computing `log2 n` within additive error
//! 5.7 w.h.p. (Theorem 3.1). The mechanism, epoch by epoch:
//!
//! 1. **Partition** (Subprotocol 2): agents split into roles A (algorithm)
//!    and S (storage) — approximately `n/2` each (Lemma 3.2).
//! 2. **Clock seed**: each A agent samples `logSize2 = geometric(1/2) + 2`
//!    and the population propagates the maximum by epidemic; whenever an
//!    agent adopts a larger value it **restarts** all downstream computation
//!    (Subprotocols 3–4). By Lemma 3.8 the settled maximum is in
//!    `[log n − log ln n, 2 log n + 1]` w.h.p.
//! 3. **Epochs**: `K = 5·logSize2` epochs, each paced by the leaderless
//!    phase clock — A agents count their own interactions up to
//!    `95·logSize2` (Subprotocol 6). Within an epoch each A agent samples a
//!    fresh geometric `gr` and the A subpopulation propagates the max
//!    (Subprotocol 5).
//! 4. **Delivery**: when an A agent's clock expires it hands its `gr` to the
//!    first same-epoch S agent it meets, which accumulates it into `sum` and
//!    advances (Subprotocol 9). S agents propagate the most-advanced
//!    `(epoch, sum)` pair among themselves (Subprotocol 7).
//! 5. **Output**: after `K` epochs, `output = sum/K + 1` — by
//!    Corollary D.10 the average of `K ≥ 4 log n` maxima of geometrics is
//!    within 4.7 of `log |A| ≈ log n − 1`, giving the 5.7 band of
//!    Lemma 3.11.

use pp_engine::rng::{geometric_half, SimRng};
use pp_engine::{EngineMode, Observer, Protocol, Simulation};

use crate::state::{MainState, Role};

/// The `Log-Size-Estimation` protocol with its tunable constants.
///
/// Defaults are the paper's: clock threshold `95·logSize2`, epoch target
/// `5·logSize2`, `+2` offset on `logSize2` (Lemma 3.8). The constants are
/// exposed so the ablation benches can probe how much slack they carry.
#[derive(Debug, Clone, Copy)]
pub struct LogSizeEstimation {
    /// Phase-clock multiplier (paper: 95).
    pub clock_multiplier: u64,
    /// Epoch-count multiplier (paper: 5).
    pub epoch_multiplier: u64,
    /// Additive offset applied to the sampled `logSize2` (paper: 2).
    pub log_size2_offset: u64,
}

impl Default for LogSizeEstimation {
    fn default() -> Self {
        Self {
            clock_multiplier: 95,
            epoch_multiplier: 5,
            log_size2_offset: 2,
        }
    }
}

impl LogSizeEstimation {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A configuration with custom constants (for ablations).
    pub fn with_constants(clock_multiplier: u64, epoch_multiplier: u64, offset: u64) -> Self {
        assert!(clock_multiplier >= 1 && epoch_multiplier >= 1);
        Self {
            clock_multiplier,
            epoch_multiplier,
            log_size2_offset: offset,
        }
    }

    fn sample_log_size2(&self, rng: &mut SimRng) -> u64 {
        geometric_half(rng) + self.log_size2_offset
    }

    /// Subprotocol 2: `Partition-Into-A/S`.
    fn partition(&self, rec: &mut MainState, sen: &mut MainState, rng: &mut SimRng) {
        match (sen.role, rec.role) {
            (Role::X, Role::X) => {
                sen.role = Role::A;
                sen.log_size2 = sen.log_size2.max(self.sample_log_size2(rng));
                rec.role = Role::S;
            }
            (Role::A, Role::X) => rec.role = Role::S,
            (Role::S, Role::X) => {
                rec.role = Role::A;
                rec.log_size2 = rec.log_size2.max(self.sample_log_size2(rng));
            }
            _ => {}
        }
    }

    /// Subprotocol 6: `Check-if-Timer-Done-and-Increment-Epoch`.
    ///
    /// Uses `>=` rather than the pseudocode's `=` (see crate docs): the
    /// delivery that sets `updated_sum` typically happens after `time`
    /// passes the threshold, so with strict equality the epoch could never
    /// advance.
    fn check_timer(&self, agent: &mut MainState, rng: &mut SimRng) {
        if agent.time >= agent.clock_threshold(self.clock_multiplier)
            && !agent.protocol_done
            && agent.updated_sum
        {
            agent.epoch += 1;
            self.move_to_next_grv(agent, rng);
            if agent.epoch >= agent.epoch_target(self.epoch_multiplier) {
                agent.protocol_done = true;
            }
        }
    }

    /// Subprotocol 8: `Move-to-Next-G.R.V`.
    fn move_to_next_grv(&self, agent: &mut MainState, rng: &mut SimRng) {
        agent.time = 0;
        agent.gr = geometric_half(rng);
        agent.updated_sum = false;
    }

    /// Subprotocol 3: `Propagate-Max-Clock-Value` (with Subprotocol 4's
    /// `Restart` on adoption).
    fn propagate_max_clock(&self, a: &mut MainState, b: &mut MainState, rng: &mut SimRng) {
        if a.log_size2 < b.log_size2 {
            a.log_size2 = b.log_size2;
            a.restart();
            a.gr = geometric_half(rng);
        } else if b.log_size2 < a.log_size2 {
            b.log_size2 = a.log_size2;
            b.restart();
            b.gr = geometric_half(rng);
        }
    }

    /// Subprotocol 7: `Propagate-Incremented-Epoch`.
    fn propagate_epoch(&self, a: &mut MainState, b: &mut MainState, rng: &mut SimRng) {
        if a.role == Role::A && b.role == Role::A {
            if a.epoch < b.epoch {
                a.epoch = b.epoch;
                self.move_to_next_grv(a, rng);
                self.finish_if_target(a);
            } else if b.epoch < a.epoch {
                b.epoch = a.epoch;
                self.move_to_next_grv(b, rng);
                self.finish_if_target(b);
            }
        } else if a.role == Role::S && b.role == Role::S {
            if a.epoch < b.epoch {
                a.epoch = b.epoch;
                a.sum = b.sum;
            } else if b.epoch < a.epoch {
                b.epoch = a.epoch;
                b.sum = a.sum;
            } else if a.sum != b.sum {
                // Tie-break (see crate docs): same epoch, different sums —
                // reconcile deterministically so outputs converge.
                let m = a.sum.max(b.sum);
                a.sum = m;
                b.sum = m;
            }
        }
    }

    fn finish_if_target(&self, agent: &mut MainState) {
        if agent.epoch >= agent.epoch_target(self.epoch_multiplier) {
            agent.protocol_done = true;
        }
    }

    /// Subprotocol 9: `Update-Sum` between one A and one S agent.
    fn update_sum(&self, a: &mut MainState, s: &mut MainState) {
        debug_assert_eq!(a.role, Role::A);
        debug_assert_eq!(s.role, Role::S);
        if a.epoch == s.epoch
            && a.time >= a.clock_threshold(self.clock_multiplier)
            && !a.protocol_done
        {
            s.epoch += 1;
            s.sum += a.gr;
            a.updated_sum = true;
        } else if a.epoch < s.epoch {
            a.updated_sum = true;
        }
    }

    /// Output assignment and propagation.
    ///
    /// An S agent that has received all `K = 5·logSize2` deliveries becomes
    /// done and computes `sum/epoch + 1`; done agents without an output
    /// adopt one from any partner that has it.
    fn settle_output(&self, a: &mut MainState, b: &mut MainState) {
        for agent in [&mut *a, &mut *b] {
            if agent.role == Role::S && agent.epoch >= agent.epoch_target(self.epoch_multiplier) {
                agent.protocol_done = true;
                agent.output = agent.computed_output();
            }
        }
        if a.protocol_done && a.output.is_none() {
            a.output = b.output;
        }
        if b.protocol_done && b.output.is_none() {
            b.output = a.output;
        }
    }
}

impl Protocol for LogSizeEstimation {
    type State = MainState;

    fn initial_state(&self) -> MainState {
        MainState::initial()
    }

    fn interact(&self, rec: &mut MainState, sen: &mut MainState, rng: &mut SimRng) {
        // Protocol 1, in pseudocode order.
        self.partition(rec, sen, rng);
        if rec.role == Role::A {
            rec.time += 1;
            self.check_timer(rec, rng);
        }
        if sen.role == Role::A {
            sen.time += 1;
            self.check_timer(sen, rng);
        }
        self.propagate_max_clock(rec, sen, rng);
        self.propagate_epoch(rec, sen, rng);
        match (rec.role, sen.role) {
            (Role::A, Role::S) => self.update_sum(rec, sen),
            (Role::S, Role::A) => self.update_sum(sen, rec),
            _ => {}
        }
        if rec.role == Role::A && sen.role == Role::A && rec.epoch == sen.epoch {
            // Subprotocol 5: Propagate-Max-G.R.V.
            let m = rec.gr.max(sen.gr);
            rec.gr = m;
            sen.gr = m;
        }
        self.settle_output(rec, sen);
    }
}

/// Maximum values each field reached, sampled at convergence checks —
/// the empirical counterpart of Lemma 3.9's state-complexity table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FieldMaxima {
    /// Max `logSize2` observed.
    pub log_size2: u64,
    /// Max `gr` observed.
    pub gr: u64,
    /// Max `time` observed.
    pub time: u64,
    /// Max `epoch` observed.
    pub epoch: u64,
    /// Max `sum` observed.
    pub sum: u64,
}

impl FieldMaxima {
    /// Folds one observed state into the running maxima.
    pub fn absorb(&mut self, s: &MainState) {
        self.log_size2 = self.log_size2.max(s.log_size2);
        self.gr = self.gr.max(s.gr);
        self.time = self.time.max(s.time);
        self.epoch = self.epoch.max(s.epoch);
        self.sum = self.sum.max(s.sum);
    }

    /// A conservative count of distinct states implied by the observed field
    /// ranges (the product over fields, times roles and flags) — the
    /// quantity Lemma 3.9 bounds by `O(log⁴ n)` *per role* via space
    /// multiplexing: A agents store `(logSize2, gr, time, epoch)`, S agents
    /// `(logSize2, epoch, sum)`.
    pub fn state_count_estimate(&self) -> u128 {
        let a_states = (self.log_size2 as u128 + 1)
            * (self.gr as u128 + 1)
            * (self.time as u128 + 1)
            * (self.epoch as u128 + 1);
        let s_states =
            (self.log_size2 as u128 + 1) * (self.epoch as u128 + 1) * (self.sum as u128 + 1);
        a_states + s_states
    }
}

impl Observer<MainState> for FieldMaxima {
    /// Absorbs every occupied state at each checkpoint (counts are
    /// irrelevant — maxima are a property of the occupied support).
    fn observe(&mut self, _time: f64, _interactions: u64, view: &[(MainState, u64)]) {
        for (s, _) in view {
            self.absorb(s);
        }
    }
}

/// Result of one full run of the size-estimation protocol.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EstimateOutcome {
    /// The common converged output (`None` if the run hit its time budget
    /// before converging).
    pub output: Option<u64>,
    /// Parallel time at convergence (or at budget exhaustion).
    pub time: f64,
    /// Whether the run converged within the budget.
    pub converged: bool,
    /// Observed field maxima (Lemma 3.9 empirics).
    pub maxima: FieldMaxima,
}

impl EstimateOutcome {
    /// Signed additive error `output − log2 n`.
    pub fn error(&self, n: u64) -> Option<f64> {
        self.output.map(|k| k as f64 - (n as f64).log2())
    }
}

/// Checks whether the population has converged: every agent is done, has an
/// output, and all outputs agree.
pub fn is_converged(states: &[MainState]) -> bool {
    let mut common: Option<u64> = None;
    for s in states {
        if !converged_into(s, &mut common) {
            return false;
        }
    }
    true
}

/// Count-level convergence check over a decoded configuration: every
/// *occupied* state is done with the same output (counts are irrelevant —
/// convergence is a property of the occupied support).
pub fn is_converged_counts(states: &[(MainState, u64)]) -> bool {
    let mut common: Option<u64> = None;
    states.iter().all(|(s, _)| converged_into(s, &mut common))
}

fn converged_into(s: &MainState, common: &mut Option<u64>) -> bool {
    if !s.protocol_done {
        return false;
    }
    match (s.output, *common) {
        (None, _) => false,
        (Some(v), None) => {
            *common = Some(v);
            true
        }
        (Some(v), Some(c)) => v == c,
    }
}

/// The default convergence-time budget, from the phase-clock accounting.
///
/// Each of the `5·logSize2` epochs lasts until an agent counts
/// `95·logSize2` interactions ≈ `47.5·logSize2` parallel time, so the run
/// takes ≈ `240·logSize2²` time, with `logSize2 ≤ 2 log n + 3` w.h.p.
/// (Lemma 3.8 plus the +2 offset). The budget below doubles that for
/// restarts and stragglers.
///
/// Note: this is *larger* than the paper's Corollary 3.10 budget
/// `(11 log n + 1)·24 ln n`, whose constant charges each epoch only the
/// `24 ln n` epidemic time and not the full `95·logSize2` clock the
/// protocol actually waits out — the `O(log² n)` shape is right, the
/// constant is optimistic (see EXPERIMENTS.md).
pub fn default_time_budget(n: u64) -> f64 {
    let ls_max = 2.0 * (n as f64).log2() + 3.0;
    500.0 * ls_max * ls_max + 1_000.0
}

/// Runs `Log-Size-Estimation` on `n` agents with the given seed and time
/// budget, returning the converged estimate (Theorem 3.1's `k`).
///
/// Runs on the unified count engine ([`EngineMode::Auto`]): the protocol
/// is interned onto the configuration-vector simulators, which store one
/// count per *occupied* state instead of one record per agent, check
/// convergence in `O(k)` instead of `O(n)`, and garbage-collect the
/// interned table as the per-interaction counters inside the states churn
/// — so memory stays bounded by the live support (`O(log⁴ n)` by
/// Lemma 3.9) on arbitrarily long runs. Use [`estimate_agentwise`] to pin
/// the per-agent engine for cross-engine validation.
///
/// A budget of `None` uses [`default_time_budget`].
///
/// ```
/// use pp_core::log_size::estimate_log_size;
///
/// let out = estimate_log_size(100, 42, None);
/// assert!(out.converged);
/// let k = out.output.unwrap() as f64;
/// // Theorem 3.1: within additive 5.7 of log2(100) ≈ 6.64.
/// assert!((k - 100f64.log2()).abs() <= 5.7);
/// ```
pub fn estimate_log_size(n: usize, seed: u64, max_time: Option<f64>) -> EstimateOutcome {
    estimate_with(LogSizeEstimation::paper(), n, seed, max_time)
}

/// [`estimate_log_size`] — the count engine is the default now, so this
/// is the same run; retained for callers written against the pre-GC
/// surface, where the count engine was the opt-in.
pub fn estimate_log_size_counted(n: usize, seed: u64, max_time: Option<f64>) -> EstimateOutcome {
    estimate_counted(LogSizeEstimation::paper(), n, seed, max_time)
}

/// [`estimate_log_size_counted`] with explicit protocol constants (same
/// engine as [`estimate_with`], kept for the pre-GC callers).
pub fn estimate_counted(
    protocol: LogSizeEstimation,
    n: usize,
    seed: u64,
    max_time: Option<f64>,
) -> EstimateOutcome {
    estimate_in_mode(protocol, n, seed, max_time, EngineMode::Auto.into())
}

/// [`estimate_log_size`] with explicit protocol constants (count engine,
/// like every default run).
pub fn estimate_with(
    protocol: LogSizeEstimation,
    n: usize,
    seed: u64,
    max_time: Option<f64>,
) -> EstimateOutcome {
    estimate_in_mode(protocol, n, seed, max_time, EngineMode::Auto.into())
}

/// [`estimate_with`] pinned to the per-agent engine
/// ([`pp_engine::SimMode::Agent`]): one record per agent, no interning.
/// The statistical-equivalence suite (`tests/unified_equivalence.rs`)
/// holds this and the count-engine default to the same output and time
/// distributions; protocol-property tests that don't care about engine
/// selection also use it, as the per-agent array is faster at the small
/// populations they run.
pub fn estimate_agentwise(
    protocol: LogSizeEstimation,
    n: usize,
    seed: u64,
    max_time: Option<f64>,
) -> EstimateOutcome {
    estimate_in_mode(protocol, n, seed, max_time, pp_engine::SimMode::Agent)
}

/// The one builder invocation behind every `Log-Size-Estimation` run:
/// engine choice is the only thing the `estimate_*` conveniences differ
/// in. Public as the registry's engine-selection hook
/// (`.mode(ctx.engine)` shaped).
pub fn estimate_in_mode(
    protocol: LogSizeEstimation,
    n: usize,
    seed: u64,
    max_time: Option<f64>,
    mode: pp_engine::SimMode,
) -> EstimateOutcome {
    let budget = max_time.unwrap_or_else(|| default_time_budget(n as u64));
    let mut maxima = FieldMaxima::default();
    let (out, output) = {
        let (out, sim) = Simulation::builder(protocol)
            .size(n as u64)
            .seed(seed)
            .mode(mode)
            .max_time(budget)
            .observe(&mut maxima)
            .until(|view: &[(MainState, u64)]| is_converged_counts(view))
            .run();
        let output = if out.converged {
            sim.view().first().and_then(|(s, _)| s.output)
        } else {
            None
        };
        (out, output)
    };
    EstimateOutcome {
        output,
        time: out.time,
        converged: out.converged,
        maxima,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::rng::rng_from_seed;

    #[test]
    fn partition_assigns_roles() {
        let p = LogSizeEstimation::paper();
        let mut rng = rng_from_seed(0);
        let mut rec = MainState::initial();
        let mut sen = MainState::initial();
        p.partition(&mut rec, &mut sen, &mut rng);
        assert_eq!(sen.role, Role::A);
        assert_eq!(rec.role, Role::S);
        assert!(sen.log_size2 >= 3, "A agent sampled logSize2 + 2");
    }

    #[test]
    fn partition_balances_via_second_rules() {
        let p = LogSizeEstimation::paper();
        let mut rng = rng_from_seed(1);
        // A meets X: X becomes S.
        let mut rec = MainState::initial();
        let mut sen = MainState::initial();
        sen.role = Role::A;
        p.partition(&mut rec, &mut sen, &mut rng);
        assert_eq!(rec.role, Role::S);
        // S meets X: X becomes A.
        let mut rec = MainState::initial();
        let mut sen = MainState::initial();
        sen.role = Role::S;
        p.partition(&mut rec, &mut sen, &mut rng);
        assert_eq!(rec.role, Role::A);
    }

    #[test]
    fn adopting_larger_logsize2_restarts() {
        let p = LogSizeEstimation::paper();
        let mut rng = rng_from_seed(2);
        let mut a = MainState::initial();
        a.role = Role::A;
        a.log_size2 = 4;
        a.epoch = 3;
        a.sum = 17;
        let mut b = MainState::initial();
        b.role = Role::A;
        b.log_size2 = 9;
        b.epoch = 1;
        p.propagate_max_clock(&mut a, &mut b, &mut rng);
        assert_eq!(a.log_size2, 9);
        assert_eq!(a.epoch, 0, "restart cleared epoch");
        assert_eq!(a.sum, 0, "restart cleared sum");
        assert_eq!(b.epoch, 1, "holder unaffected");
    }

    #[test]
    fn timer_requires_delivery_before_advancing() {
        let p = LogSizeEstimation::paper();
        let mut rng = rng_from_seed(3);
        let mut a = MainState::initial();
        a.role = Role::A;
        a.log_size2 = 3;
        a.time = 95 * 3 + 10;
        a.updated_sum = false;
        p.check_timer(&mut a, &mut rng);
        assert_eq!(a.epoch, 0, "no advance without delivery");
        a.updated_sum = true;
        p.check_timer(&mut a, &mut rng);
        assert_eq!(a.epoch, 1);
        assert_eq!(a.time, 0, "clock reset");
        assert!(!a.updated_sum, "fresh epoch needs a fresh delivery");
    }

    #[test]
    fn update_sum_delivers_once_per_epoch() {
        let p = LogSizeEstimation::paper();
        let mut a = MainState::initial();
        a.role = Role::A;
        a.log_size2 = 3;
        a.gr = 7;
        a.time = 95 * 3;
        let mut s = MainState::initial();
        s.role = Role::S;
        p.update_sum(&mut a, &mut s);
        assert_eq!(s.epoch, 1);
        assert_eq!(s.sum, 7);
        assert!(a.updated_sum);
        // A second same-epoch A agent now sees s.epoch > its epoch and just
        // marks itself delivered without double-counting.
        let mut a2 = MainState::initial();
        a2.role = Role::A;
        a2.log_size2 = 3;
        a2.gr = 100;
        a2.time = 95 * 3;
        p.update_sum(&mut a2, &mut s);
        assert_eq!(s.sum, 7, "no double delivery");
        assert!(a2.updated_sum);
    }

    #[test]
    fn s_agents_reconcile_equal_epoch_sums() {
        let p = LogSizeEstimation::paper();
        let mut rng = rng_from_seed(4);
        let mut s1 = MainState::initial();
        s1.role = Role::S;
        s1.epoch = 3;
        s1.sum = 20;
        let mut s2 = MainState::initial();
        s2.role = Role::S;
        s2.epoch = 3;
        s2.sum = 25;
        p.propagate_epoch(&mut s1, &mut s2, &mut rng);
        assert_eq!(s1.sum, 25);
        assert_eq!(s2.sum, 25);
    }

    #[test]
    fn small_population_converges_with_accurate_output() {
        let n = 200;
        let out = estimate_log_size(n, 42, None);
        assert!(out.converged, "must converge within the budget");
        let k = out.output.expect("converged run has output") as f64;
        let logn = (n as f64).log2();
        assert!(
            (k - logn).abs() <= 5.7,
            "estimate {k} outside Theorem 3.1 band around {logn}"
        );
    }

    #[test]
    fn several_seeds_stay_in_band() {
        // Figure 2's companion claim: "in practice the estimate is always
        // within 2". Use the theorem band as the hard assertion and track
        // the tight band loosely. Pinned to the agent engine — the claim
        // is a protocol property, engine equivalence is covered by
        // `tests/unified_equivalence.rs`, and the per-agent array is the
        // faster engine at this population size.
        let n = 300;
        let mut within_2 = 0;
        let trials = 5;
        for seed in 0..trials {
            let out = estimate_agentwise(LogSizeEstimation::paper(), n, 1000 + seed, None);
            assert!(out.converged);
            let err = out.error(n as u64).unwrap().abs();
            assert!(err <= 5.7, "seed {seed}: error {err} breaks Theorem 3.1");
            if err <= 2.0 {
                within_2 += 1;
            }
        }
        assert!(
            within_2 >= trials - 1,
            "only {within_2}/{trials} within additive error 2"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = estimate_log_size(150, 7, None);
        let b = estimate_log_size(150, 7, None);
        assert_eq!(a.output, b.output);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn field_maxima_respect_lemma_3_9_ranges() {
        // Agent engine: a protocol-property check (see
        // `several_seeds_stay_in_band` for the pinning rationale).
        let n = 400u64;
        let out = estimate_agentwise(LogSizeEstimation::paper(), n as usize, 11, None);
        assert!(out.converged);
        let logn = (n as f64).log2();
        let m = out.maxima;
        assert!((m.log_size2 as f64) <= 2.0 * logn + 1.0 + 2.0);
        // gr is the max over ~K·|A| ≈ n·log n geometric samples across the
        // whole run, so allow a few units of slack beyond the per-epoch
        // w.h.p. range of Corollary A.2.
        assert!((m.gr as f64) <= 2.0 * logn + 6.0);
        assert!((m.time as f64) <= 191.0 * logn * 1.5);
        assert!((m.epoch as f64) <= 11.0 * logn);
        assert!((m.sum as f64) <= 22.0 * logn * logn);
        assert!(m.state_count_estimate() > 0);
    }

    #[test]
    fn is_converged_detects_disagreement() {
        let mut s1 = MainState::initial();
        s1.protocol_done = true;
        s1.output = Some(5);
        let mut s2 = s1.clone();
        assert!(is_converged(&[s1.clone(), s2.clone()]));
        s2.output = Some(6);
        assert!(!is_converged(&[s1.clone(), s2.clone()]));
        s2.output = None;
        assert!(!is_converged(&[s1.clone(), s2.clone()]));
        s2.output = Some(5);
        s2.protocol_done = false;
        assert!(!is_converged(&[s1, s2]));
    }

    #[test]
    fn gc_bounds_interned_table_to_live_support() {
        // The acceptance check behind running `estimate_log_size` on the
        // count engine by default: the protocol's per-interaction counters
        // mint fresh record states constantly (A agents bump `time` every
        // interaction, even after convergence), so without GC the interned
        // table grows without bound. With GC it must stay within a small
        // multiple of the live support, for as long as the run continues.
        use pp_engine::batch::ConfigSim;
        use pp_engine::Interned;

        let n = 200usize;
        let interned = Interned::new(LogSizeEstimation::paper());
        let handle = interned.handle();
        let config = interned.uniform_config(n as u64);
        let mut sim = ConfigSim::new(interned, config, 42);
        // Sub-`n` advance budgets keep the dense per-agent lane (which
        // compacts the table itself, masking GC) disengaged, so this run
        // exercises the per-interaction interning path the GC serves;
        // the lane-active bound is covered by the `dense_lane_*` tests
        // in pp-engine.
        let out = sim.run_until(
            |c| is_converged_counts(&handle.decode(c)),
            (n / 2) as u64,
            default_time_budget(n as u64),
        );
        assert!(out.converged);
        // Keep churning well past convergence: the table bound must hold
        // in steady state, not just at the convergence checkpoint.
        for _ in 0..out.interactions / (n as u64) {
            sim.steps((n / 2) as u64);
        }
        let live = sim.config_view().support_size();
        let table = handle.discovered();
        assert!(
            sim.gc_collections() >= 1,
            "a full Log-Size-Estimation run must trigger interner GC"
        );
        assert!(
            // The trigger fires past max(1024, 4·live) at a ~√n-chunk
            // checkpoint; 6·live + 1200 dominates that with slack for
            // between-checkpoint growth.
            table <= 6 * live + 1_200,
            "interned table ({table} slots) not bounded by live support ({live})"
        );
        assert!(
            (handle.total_interned() as usize) > 2 * table,
            "workload minted too few dead states ({} total) to prove the bound",
            handle.total_interned()
        );
    }

    #[test]
    fn two_agents_still_make_progress() {
        // Degenerate n = 2: one A, one S. The protocol should still converge
        // (the estimate will be poor, but nothing deadlocks).
        let out = estimate_log_size(2, 5, Some(500_000.0));
        assert!(out.converged, "n=2 deadlocked");
    }
}
