//! Restart-based composition: uniformizing downstream protocols (§1.1).
//!
//! Many fast population protocols in the literature are *nonuniform*: they
//! assume every agent is initialized with `⌊log n⌋`. The paper's composition
//! scheme removes that assumption without needing a terminating size
//! estimator (which Theorem 4.1 forbids):
//!
//! 1. Each agent obtains the weak estimate `s` (`logSize2`: max of
//!    geometric+2 samples, by epidemic).
//! 2. The downstream protocol runs in `K` stages paced by the leaderless
//!    phase clock: each agent counts interactions up to `f(s)` per stage;
//!    the first agent to finish a stage moves the population forward by a
//!    max-stage epidemic.
//! 3. Whenever an agent adopts a larger `s`, it **restarts** the entire
//!    downstream computation — so the one surviving run is the one paced by
//!    the settled (correct) estimate.
//!
//! The scheme is *converging* rather than terminating: exactly the
//! compromise the paper shows is unavoidable.

use std::fmt::Debug;
use std::hash::Hash;

use pp_engine::rng::{geometric_half, SimRng};
use pp_engine::{Protocol, Simulation};

/// A staged downstream protocol to be uniformized.
///
/// The downstream protocol receives the current size estimate `s` and the
/// stage index on every interaction; it must behave correctly when stages
/// are advanced by the clock and must tolerate full restarts.
pub trait Downstream {
    /// Downstream per-agent state (`Eq + Hash` so composed populations can
    /// run on any engine behind the unified simulation API).
    type State: Clone + Eq + Hash + Debug;

    /// Number of stages to run given estimate `s` (the paper's `K`,
    /// e.g. `Θ(s)` for cancellation/doubling majority).
    fn num_stages(&self, s: u64) -> u64;

    /// Interactions each agent counts per stage (the paper's `f(s)`,
    /// e.g. `95·s`).
    fn stage_threshold(&self, s: u64) -> u64;

    /// A fresh downstream state (used at start and on restart). `agent_input`
    /// is the agent's immutable protocol input (e.g. its majority opinion),
    /// preserved across restarts.
    fn fresh(&self, s: u64, agent_input: u64, rng: &mut SimRng) -> Self::State;

    /// One downstream interaction. `rec_stage`/`sen_stage` are the agents'
    /// current stage indices (equal except transiently).
    fn interact(
        &self,
        rec: &mut Self::State,
        sen: &mut Self::State,
        rec_stage: u64,
        sen_stage: u64,
        s: u64,
        rng: &mut SimRng,
    );

    /// The downstream output of an agent, once meaningful.
    fn output(&self, state: &Self::State) -> Option<u64>;
}

/// Composed per-agent state: clock fields plus the downstream state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComposedState<S> {
    /// Weak size estimate `s` (max geometric+2, by epidemic).
    pub estimate: u64,
    /// Whether this agent has sampled its own estimate contribution.
    pub seeded: bool,
    /// Interaction count within the current stage.
    pub count: u64,
    /// Current stage in `0..=K` (stage `K` means "all stages done").
    pub stage: u64,
    /// The agent's immutable input to the downstream protocol.
    pub input: u64,
    /// Downstream protocol state.
    pub inner: S,
}

/// The uniformizing wrapper around a [`Downstream`] protocol.
#[derive(Debug, Clone)]
pub struct Uniformize<D> {
    /// The downstream protocol being paced.
    pub downstream: D,
}

impl<D: Downstream> Uniformize<D> {
    /// Wraps `downstream` in the composition scheme.
    pub fn new(downstream: D) -> Self {
        Self { downstream }
    }

    fn seed(&self, s: &mut ComposedState<D::State>, rng: &mut SimRng) {
        if !s.seeded {
            s.seeded = true;
            let sample = geometric_half(rng) + 2;
            if sample > s.estimate {
                s.estimate = sample;
                self.restart(s, rng);
            }
        }
    }

    fn restart(&self, s: &mut ComposedState<D::State>, rng: &mut SimRng) {
        s.count = 0;
        s.stage = 0;
        s.inner = self.downstream.fresh(s.estimate, s.input, rng);
    }

    fn tick(&self, s: &mut ComposedState<D::State>) {
        let k = self.downstream.num_stages(s.estimate);
        if s.stage >= k {
            return; // all stages complete
        }
        s.count += 1;
        if s.count >= self.downstream.stage_threshold(s.estimate) {
            s.stage += 1;
            s.count = 0;
        }
    }

    fn sync(
        &self,
        a: &mut ComposedState<D::State>,
        b: &mut ComposedState<D::State>,
        rng: &mut SimRng,
    ) {
        // Estimate epidemic with restart on adoption (the §1.1 rule).
        if a.estimate < b.estimate {
            a.estimate = b.estimate;
            self.restart(a, rng);
        } else if b.estimate < a.estimate {
            b.estimate = a.estimate;
            self.restart(b, rng);
        }
        // Stage epidemic.
        if a.stage < b.stage {
            a.stage = b.stage;
            a.count = 0;
        } else if b.stage < a.stage {
            b.stage = a.stage;
            b.count = 0;
        }
    }
}

impl<D: Downstream> Protocol for Uniformize<D> {
    type State = ComposedState<D::State>;

    fn initial_state(&self) -> Self::State {
        // Inputs default to 0; harnesses that need per-agent inputs assign
        // them through the simulation builder (`composed_population` —
        // harness-level input assignment, as with `SeededInit`).
        ComposedState {
            estimate: 1,
            seeded: false,
            count: 0,
            stage: 0,
            input: 0,
            inner: self.downstream.fresh(1, 0, &mut seedless_rng()),
        }
    }

    fn interact(&self, rec: &mut Self::State, sen: &mut Self::State, rng: &mut SimRng) {
        self.seed(rec, rng);
        self.seed(sen, rng);
        self.tick(rec);
        self.tick(sen);
        self.sync(rec, sen, rng);
        self.downstream.interact(
            &mut rec.inner,
            &mut sen.inner,
            rec.stage,
            sen.stage,
            rec.estimate.max(sen.estimate),
            rng,
        );
    }
}

/// An RNG for the (deterministic) initial downstream state. `fresh` at
/// initialization time must be deterministic — every agent starts
/// identically in a uniform protocol — so this RNG is fixed-seed and any
/// sampling in `fresh` repeats identically across agents.
fn seedless_rng() -> SimRng {
    use rand::SeedableRng;
    SimRng::seed_from_u64(0)
}

/// Builds a composed population of size `n` where agent `i` gets downstream
/// input `inputs(i)`, returning the configured [`Simulation`] ready to run
/// (drive it with [`Simulation::run_until`] / [`Simulation::run_for_time`]).
pub fn composed_population<'a, D: Downstream + 'a>(
    downstream: D,
    n: usize,
    seed: u64,
    inputs: impl Fn(usize) -> u64,
) -> Simulation<'a, ComposedState<D::State>> {
    let wrapper = Uniformize::new(downstream);
    // `fresh` may sample, and the legacy harness threaded one fixed-seed
    // RNG through all agents in index order — precompute the states so the
    // builder's (pure) per-index assignment reproduces that byte for byte.
    let mut rng = seedless_rng();
    let states: Vec<ComposedState<D::State>> = (0..n)
        .map(|i| {
            let input = inputs(i);
            ComposedState {
                estimate: 1,
                seeded: false,
                count: 0,
                stage: 0,
                input,
                inner: wrapper.downstream.fresh(1, input, &mut rng),
            }
        })
        .collect();
    Simulation::builder(wrapper)
        .size(n as u64)
        .seed(seed)
        .init_with(move |i, _| states[i].clone())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy downstream protocol: in every stage, agents add the stage index
    /// to an accumulator exactly once. Checks that stages arrive in order
    /// and restarts wipe partial work.
    #[derive(Debug, Clone)]
    struct StageRecorder;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct RecState {
        seen_stages: Vec<u64>,
    }

    impl Downstream for StageRecorder {
        type State = RecState;

        fn num_stages(&self, _s: u64) -> u64 {
            4
        }

        fn stage_threshold(&self, s: u64) -> u64 {
            95 * s
        }

        fn fresh(&self, _s: u64, _input: u64, _rng: &mut SimRng) -> RecState {
            RecState {
                seen_stages: Vec::new(),
            }
        }

        fn interact(
            &self,
            rec: &mut RecState,
            sen: &mut RecState,
            rec_stage: u64,
            sen_stage: u64,
            _s: u64,
            _rng: &mut SimRng,
        ) {
            for (state, stage) in [(rec, rec_stage), (sen, sen_stage)] {
                if state.seen_stages.last() != Some(&stage) {
                    state.seen_stages.push(stage);
                }
            }
        }

        fn output(&self, state: &RecState) -> Option<u64> {
            state.seen_stages.last().copied()
        }
    }

    #[test]
    fn stages_are_seen_in_order_by_every_agent() {
        let mut sim = composed_population(StageRecorder, 200, 5, |_| 0);
        let out = sim.run_until(
            |view: &[(ComposedState<RecState>, u64)]| view.iter().all(|(c, _)| c.stage >= 4),
            1_000_000.0,
        );
        assert!(out.converged, "composition never finished its stages");
        for (c, _) in sim.view() {
            let stages = &c.inner.seen_stages;
            assert!(
                stages.windows(2).all(|w| w[0] < w[1]),
                "stages out of order: {stages:?}"
            );
            // After the estimate settles (restart), the record starts from
            // the then-current stage and proceeds without gaps of more
            // than... gaps can occur transiently; the key invariant is
            // monotonicity plus reaching the final stage.
            assert_eq!(*stages.last().unwrap(), 4);
        }
    }

    #[test]
    fn estimates_converge_to_common_value() {
        let mut sim = composed_population(StageRecorder, 300, 6, |_| 0);
        sim.run_for_time(300.0);
        let view = sim.view();
        let e0 = view[0].0.estimate;
        assert!(view.iter().all(|(c, _)| c.estimate == e0));
        let n = 300f64;
        // Lemma 3.8 band (with slack for the small population).
        assert!(
            (e0 as f64) >= n.log2() - n.ln().log2() - 1.0 && (e0 as f64) <= 2.0 * n.log2() + 2.0,
            "estimate {e0} outside band for n=300"
        );
    }

    #[test]
    fn inputs_survive_restarts() {
        let mut sim = composed_population(StageRecorder, 100, 7, |i| i as u64 % 2);
        sim.run_for_time(2000.0);
        let ones: u64 = sim
            .view()
            .iter()
            .filter(|(c, _)| c.input == 1)
            .map(|(_, k)| k)
            .sum();
        assert_eq!(ones, 50, "inputs must be immutable across restarts");
    }

    #[test]
    fn stage_skew_bounded_after_settling() {
        let mut sim = composed_population(StageRecorder, 300, 8, |_| 0);
        // Let the estimate settle.
        sim.run_for_time(100.0);
        loop {
            sim.run_for_time(5.0);
            let view = sim.view();
            let min = view.iter().map(|(c, _)| c.stage).min().unwrap();
            let max = view.iter().map(|(c, _)| c.stage).max().unwrap();
            assert!(max - min <= 1, "stage skew {} too large", max - min);
            if min >= 4 {
                break;
            }
        }
    }
}
