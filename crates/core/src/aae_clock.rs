//! The leader-driven phase clock of Angluin, Aspnes & Eisenstat \[9\] —
//! the clock Theorem 3.13's proof invokes.
//!
//! Every agent carries a phase number. Non-leaders adopt the maximum phase
//! they see (an epidemic per phase). The **leader** advances the clock: when
//! it meets an agent whose phase has caught up to its own, it increments its
//! phase. A fresh phase thus needs `Θ(log n)` time to reach a constant
//! fraction of the population before the leader is likely to meet a
//! caught-up agent, so each phase lasts `Θ(log n)` time w.h.p. — counting
//! `k` phases waits `Θ(k log n)` time without any agent knowing `n`
//! (\[9, Corollary 1\]).
//!
//! [`AaeTerminating`] uses this clock for a second, paper-literal
//! implementation of Theorem 3.13: the leader terminates after
//! `k₂ · 5 · logSize2` phases (phases ∝ `logSize2`, phase length `Θ(log n)`
//! ⇒ total `Θ(log² n)`), to compare against the counter-driven
//! [`crate::leader::LeaderTerminating`].

use pp_engine::rng::SimRng;
use pp_engine::{Protocol, Simulation};

use crate::log_size::LogSizeEstimation;
use crate::state::MainState;

/// Standalone AAE phase-clock state.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize, PartialOrd, Ord, Hash,
)]
pub struct AaeState {
    /// Current phase number.
    pub phase: u64,
    /// Whether this agent is the leader driving the clock.
    pub is_leader: bool,
}

/// The standalone AAE phase clock (for measuring phase durations).
#[derive(Debug, Clone, Copy, Default)]
pub struct AaePhaseClock;

/// One clock step on a pair of states; returns nothing, mutates in place.
///
/// Order of operations matters and follows \[9\]: the leader first checks
/// whether its partner has caught up (phase ≥ its own), then everyone
/// adopts the max.
pub fn aae_step(rec: &mut AaeState, sen: &mut AaeState) {
    let rec_before = rec.phase;
    let sen_before = sen.phase;
    if rec.is_leader && sen_before >= rec_before {
        rec.phase = sen_before + 1;
    } else if sen.is_leader && rec_before >= sen_before {
        sen.phase = rec_before + 1;
    }
    // Non-leaders (and the leader, harmlessly) adopt the max.
    let m = rec.phase.max(sen.phase);
    if !rec.is_leader {
        rec.phase = m;
    }
    if !sen.is_leader {
        sen.phase = m;
    }
}

impl Protocol for AaePhaseClock {
    type State = AaeState;

    fn initial_state(&self) -> AaeState {
        AaeState {
            phase: 0,
            is_leader: false,
        }
    }

    fn interact(&self, rec: &mut AaeState, sen: &mut AaeState, _rng: &mut SimRng) {
        aae_step(rec, sen);
    }
}

/// Measures the parallel time for the leader to advance through `phases`
/// phases on `n` agents. \[9\]: expect `Θ(phases · log n)`.
pub fn time_for_phases(n: usize, phases: u64, seed: u64) -> f64 {
    let (out, _) = Simulation::builder(AaePhaseClock)
        .size(n as u64)
        .seed(seed)
        .init_planted([(
            AaeState {
                phase: 0,
                is_leader: true,
            },
            1,
        )])
        .max_time(f64::MAX)
        .until(move |view: &[(AaeState, u64)]| {
            view.iter().any(|(s, _)| s.is_leader && s.phase >= phases)
        })
        .run();
    debug_assert!(out.converged);
    out.time
}

/// Per-agent state of the AAE-clock-driven terminating estimator.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AaeTermState {
    /// Embedded main-protocol state.
    pub main: MainState,
    /// AAE clock state.
    pub clock: AaeState,
    /// Termination flag (epidemic; freezes agents).
    pub terminated: bool,
}

/// Theorem 3.13 with the paper-literal AAE phase clock.
#[derive(Debug, Clone, Copy)]
pub struct AaeTerminating {
    /// The embedded estimator.
    pub fast: LogSizeEstimation,
    /// Phase target as a multiple of `5·logSize2` (the paper's `k₂`).
    ///
    /// Sizing: measured phase duration is ≈ `0.48·ln n ≈ 0.33·logSize2`
    /// time, and the main protocol converges in ≈ `240·logSize2²` time, so
    /// convergence needs ≈ `720·logSize2` phases = `k₂·5·logSize2` with
    /// `k₂ ≈ 145`. The default 600 leaves a ≈ 4× safety margin — the
    /// paper's "big k₂".
    pub k2: u64,
}

impl Default for AaeTerminating {
    fn default() -> Self {
        Self {
            fast: LogSizeEstimation::paper(),
            k2: 600,
        }
    }
}

impl AaeTerminating {
    /// The paper's construction.
    pub fn paper() -> Self {
        Self::default()
    }

    fn phase_target(&self, s: &MainState) -> u64 {
        self.k2 * 5 * s.log_size2
    }
}

impl Protocol for AaeTerminating {
    type State = AaeTermState;

    fn initial_state(&self) -> AaeTermState {
        AaeTermState {
            main: MainState::initial(),
            clock: AaeState {
                phase: 0,
                is_leader: false,
            },
            terminated: false,
        }
    }

    fn interact(&self, rec: &mut AaeTermState, sen: &mut AaeTermState, rng: &mut SimRng) {
        if rec.terminated || sen.terminated {
            rec.terminated = true;
            sen.terminated = true;
            return;
        }
        let rec_ls = rec.main.log_size2;
        let sen_ls = sen.main.log_size2;
        self.fast.interact(&mut rec.main, &mut sen.main, rng);
        // Restart the clock when the estimate improves (same rule as the
        // counter-based variant).
        if rec.clock.is_leader && rec.main.log_size2 != rec_ls {
            rec.clock.phase = 0;
        }
        if sen.clock.is_leader && sen.main.log_size2 != sen_ls {
            sen.clock.phase = 0;
        }
        aae_step(&mut rec.clock, &mut sen.clock);
        for agent in [&mut *rec, &mut *sen] {
            if agent.clock.is_leader && agent.clock.phase >= self.phase_target(&agent.main) {
                agent.terminated = true;
            }
        }
        if rec.terminated || sen.terminated {
            rec.terminated = true;
            sen.terminated = true;
        }
    }
}

/// Runs the AAE-clock terminating protocol (agent 0 is the leader).
/// Returns `(termination_time, output, correct_within_band)`.
pub fn run_aae_terminating(n: usize, seed: u64, max_time: f64) -> Option<(f64, Option<u64>, bool)> {
    let leader = AaeTermState {
        main: MainState::initial(),
        clock: AaeState {
            phase: 0,
            is_leader: true,
        },
        terminated: false,
    };
    let (fired, sim) = Simulation::builder(AaeTerminating::paper())
        .size(n as u64)
        .seed(seed)
        .init_planted([(leader, 1)])
        .max_time(max_time)
        .until(|view: &[(AaeTermState, u64)]| view.iter().any(|(a, _)| a.terminated))
        .run();
    if !fired.converged {
        return None;
    }
    let mut counts = std::collections::BTreeMap::new();
    for (s, k) in sim.view() {
        if let Some(o) = s.main.output {
            *counts.entry(o).or_insert(0u64) += k;
        }
    }
    let output = counts.into_iter().max_by_key(|&(_, c)| c).map(|(o, _)| o);
    let correct = output
        .map(|k| (k as f64 - (n as f64).log2()).abs() <= 5.7)
        .unwrap_or(false);
    Some((fired.time, output, correct))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_advances_on_caught_up_partner() {
        let mut leader = AaeState {
            phase: 3,
            is_leader: true,
        };
        let mut follower = AaeState {
            phase: 3,
            is_leader: false,
        };
        aae_step(&mut leader, &mut follower);
        assert_eq!(leader.phase, 4);
        assert_eq!(follower.phase, 4, "follower adopts the new max");
    }

    #[test]
    fn leader_waits_for_laggards() {
        let mut leader = AaeState {
            phase: 5,
            is_leader: true,
        };
        let mut laggard = AaeState {
            phase: 2,
            is_leader: false,
        };
        aae_step(&mut leader, &mut laggard);
        assert_eq!(leader.phase, 5, "no advance on a lagging partner");
        assert_eq!(laggard.phase, 5, "laggard catches up");
    }

    #[test]
    fn phase_duration_is_logarithmic() {
        // Time for 30 phases should scale ~log n: ratio between n=2000 and
        // n=200 should be近 ln(2000)/ln(200) ≈ 1.4, certainly < 3.
        let t_small: f64 = (0..3).map(|s| time_for_phases(200, 30, s)).sum::<f64>() / 3.0;
        let t_large: f64 = (0..3)
            .map(|s| time_for_phases(2000, 30, 10 + s))
            .sum::<f64>()
            / 3.0;
        let ratio = t_large / t_small;
        assert!(
            ratio < 3.0,
            "phase time not logarithmic: {t_small} -> {t_large}"
        );
        // And a phase is at least a constant fraction of ln n.
        let per_phase = t_large / 30.0;
        assert!(
            per_phase > 0.2 * (2000f64).ln(),
            "phase {per_phase} too fast for Θ(log n)"
        );
    }

    #[test]
    fn aae_terminating_is_correct() {
        let n = 120;
        let (time, output, correct) = run_aae_terminating(n, 44, 1e8).expect("must terminate");
        assert!(correct, "estimate {output:?} out of band");
        // Must fire after the typical convergence time.
        let conv = crate::log_size::estimate_log_size(n, 45, None);
        assert!(
            time > conv.time,
            "AAE clock fired at {time} before typical convergence {}",
            conv.time
        );
    }

    #[test]
    fn phases_never_decrease_for_followers() {
        let mut sim = Simulation::builder(AaePhaseClock)
            .size(100)
            .seed(3)
            .init_planted([(
                AaeState {
                    phase: 0,
                    is_leader: true,
                },
                1,
            )])
            .build();
        let mut prev_min = 0;
        for _ in 0..50 {
            sim.run_for_time(5.0);
            let min = sim.view().iter().map(|(s, _)| s.phase).min().unwrap();
            assert!(min >= prev_min, "a phase went backwards");
            prev_min = min;
        }
        assert!(prev_min > 0, "clock never advanced");
    }
}
