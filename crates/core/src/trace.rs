//! Progress tracing for `Log-Size-Estimation` runs.
//!
//! The experiment harnesses mostly need final outcomes; this module records
//! *trajectories* — how the epoch front, the settled `logSize2`, and the
//! done-fraction evolve over a run — for the `trace_run` example and for
//! tests that assert dynamic invariants (the epoch front advances, restarts
//! only happen while `logSize2` is still rising, skew stays bounded).

use pp_engine::{Simulation, Trace};

use crate::log_size::{is_converged_counts, LogSizeEstimation};
use crate::state::{MainState, Role};

/// One sampled snapshot of population progress.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgressSnapshot {
    /// Smallest epoch among role-A agents (0 if none yet).
    pub min_epoch: u64,
    /// Largest epoch among all agents.
    pub max_epoch: u64,
    /// Largest `logSize2` in the population.
    pub log_size2: u64,
    /// Whether all agents agree on `logSize2`.
    pub log_size2_settled: bool,
    /// Fraction of agents with `protocol_done`.
    pub done_fraction: f64,
    /// Number of distinct non-`None` outputs.
    pub distinct_outputs: usize,
}

impl ProgressSnapshot {
    /// Computes a snapshot from the agent states.
    pub fn of(states: &[MainState]) -> Self {
        Self::accumulate(states.iter().map(|s| (s, 1)))
    }

    /// Computes a snapshot from a decoded `(state, count)` view — the
    /// observation surface of [`Simulation`].
    pub fn of_counts(view: &[(MainState, u64)]) -> Self {
        Self::accumulate(view.iter().map(|(s, c)| (s, *c)))
    }

    fn accumulate<'s>(pairs: impl Iterator<Item = (&'s MainState, u64)>) -> Self {
        let mut min_epoch = u64::MAX;
        let mut max_epoch = 0;
        let mut ls_min = u64::MAX;
        let mut ls_max = 0;
        let mut done = 0u64;
        let mut total = 0u64;
        let mut outputs = std::collections::BTreeSet::new();
        let mut any_a = false;
        for (s, count) in pairs {
            total += count;
            if s.role == Role::A {
                any_a = true;
                min_epoch = min_epoch.min(s.epoch);
            }
            max_epoch = max_epoch.max(s.epoch);
            ls_min = ls_min.min(s.log_size2);
            ls_max = ls_max.max(s.log_size2);
            if s.protocol_done {
                done += count;
            }
            if let Some(o) = s.output {
                outputs.insert(o);
            }
        }
        Self {
            min_epoch: if any_a { min_epoch } else { 0 },
            max_epoch,
            log_size2: ls_max,
            log_size2_settled: ls_min == ls_max,
            done_fraction: done as f64 / total as f64,
            distinct_outputs: outputs.len(),
        }
    }
}

/// Runs the protocol to convergence, sampling a [`ProgressSnapshot`] every
/// `cadence` units of parallel time. Returns the trace and whether the run
/// converged within `max_time`.
pub fn run_with_trace(
    n: usize,
    seed: u64,
    cadence: f64,
    max_time: f64,
) -> (Trace<ProgressSnapshot>, bool) {
    assert!(cadence > 0.0);
    let check = ((cadence * n as f64).ceil() as u64).max(1);
    let mut trace = Trace::new();
    let (out, _) = Simulation::builder(LogSizeEstimation::paper())
        .size(n as u64)
        .seed(seed)
        .check_every(check)
        .max_time(max_time)
        .observe_with(|time, _interactions, view: &[(MainState, u64)]| {
            trace.push(time, ProgressSnapshot::of_counts(view));
        })
        .until(|view: &[(MainState, u64)]| is_converged_counts(view))
        .run();
    (trace, out.converged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_reaches_convergence() {
        let (trace, converged) = run_with_trace(150, 3, 200.0, 1e7);
        assert!(converged);
        let last = trace.last().unwrap().value;
        assert_eq!(last.done_fraction, 1.0);
        assert_eq!(last.distinct_outputs, 1);
        assert!(last.log_size2_settled);
    }

    #[test]
    fn epoch_front_advances_once_settled() {
        let (trace, converged) = run_with_trace(200, 5, 100.0, 1e7);
        assert!(converged);
        // After logSize2 settles, max_epoch must be non-decreasing.
        let mut settled = false;
        let mut prev = 0;
        for p in trace.points() {
            if settled {
                assert!(
                    p.value.max_epoch >= prev,
                    "epoch front went backwards after settling"
                );
            }
            if p.value.log_size2_settled {
                settled = true;
            }
            prev = p.value.max_epoch;
        }
        assert!(settled, "logSize2 never settled");
    }

    #[test]
    fn done_fraction_monotone_after_settling() {
        let (trace, converged) = run_with_trace(150, 7, 100.0, 1e7);
        assert!(converged);
        let settle_idx = trace
            .points()
            .iter()
            .position(|p| p.value.log_size2_settled)
            .unwrap();
        let mut prev = 0.0;
        for p in &trace.points()[settle_idx..] {
            assert!(p.value.done_fraction >= prev - 1e-9);
            prev = p.value.done_fraction;
        }
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_cadence_rejected() {
        run_with_trace(10, 0, 0.0, 10.0);
    }
}
