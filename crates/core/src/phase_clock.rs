//! Leaderless and leader-driven phase clocks.
//!
//! The paper's synchronization device (§1.1, §3.1): every agent counts its
//! own interactions against a threshold proportional to a weak size estimate
//! `s` (`logSize2`). Lemma 3.6 shows the count concentrates — in `C ln n`
//! parallel time no agent sees more than `(2C + √(12C)) ln n` interactions
//! w.h.p. — so "count to `95·s`" behaves like "wait `Θ(log n)` time", and
//! the first agent to cross the threshold moves the whole population to the
//! next stage by a max-stage epidemic.
//!
//! This module provides the clock as a standalone, reusable protocol (the
//! main protocol embeds the same logic in its epoch machinery; the
//! composition framework of [`crate::composition`] builds on the types
//! here).

use pp_engine::rng::{geometric_half, SimRng};
use pp_engine::Protocol;

/// State of one agent of the standalone leaderless phase clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockState {
    /// Weak size estimate `s` (max of geometric+2 samples, by epidemic).
    pub estimate: u64,
    /// Whether this agent has sampled its own estimate yet.
    pub seeded: bool,
    /// Interaction count within the current stage.
    pub count: u64,
    /// Current stage index.
    pub stage: u64,
}

impl ClockState {
    /// Initial state: unseeded, stage 0.
    pub fn initial() -> Self {
        Self {
            estimate: 1,
            seeded: false,
            count: 0,
            stage: 0,
        }
    }
}

/// The standalone leaderless phase clock protocol.
///
/// Stage `k` lasts until some agent counts `threshold_multiplier · s`
/// interactions within it; the incremented stage index then spreads by
/// epidemic (adoption resets the local count). The clock's quality metric
/// is *stage skew*: how far apart the stages of any two agents can be at
/// one instant (should be ≤ 1 w.h.p. once `s` has settled).
#[derive(Debug, Clone, Copy)]
pub struct LeaderlessPhaseClock {
    /// Interactions per stage, as a multiple of the estimate (paper: 95).
    pub threshold_multiplier: u64,
}

impl Default for LeaderlessPhaseClock {
    fn default() -> Self {
        Self {
            threshold_multiplier: 95,
        }
    }
}

impl LeaderlessPhaseClock {
    fn seed(&self, s: &mut ClockState, rng: &mut SimRng) {
        if !s.seeded {
            s.seeded = true;
            s.estimate = s.estimate.max(geometric_half(rng) + 2);
        }
    }

    fn tick(&self, s: &mut ClockState) {
        s.count += 1;
        if s.count >= self.threshold_multiplier * s.estimate {
            s.stage += 1;
            s.count = 0;
        }
    }

    fn sync(&self, a: &mut ClockState, b: &mut ClockState) {
        // Estimate epidemic; adopting a larger estimate restarts the clock.
        if a.estimate < b.estimate {
            a.estimate = b.estimate;
            a.stage = 0;
            a.count = 0;
        } else if b.estimate < a.estimate {
            b.estimate = a.estimate;
            b.stage = 0;
            b.count = 0;
        }
        // Stage epidemic.
        if a.stage < b.stage {
            a.stage = b.stage;
            a.count = 0;
        } else if b.stage < a.stage {
            b.stage = a.stage;
            b.count = 0;
        }
    }
}

impl Protocol for LeaderlessPhaseClock {
    type State = ClockState;

    fn initial_state(&self) -> ClockState {
        ClockState::initial()
    }

    fn interact(&self, rec: &mut ClockState, sen: &mut ClockState, rng: &mut SimRng) {
        self.seed(rec, rng);
        self.seed(sen, rng);
        self.tick(rec);
        self.tick(sen);
        self.sync(rec, sen);
    }
}

/// Maximum stage difference across the population — the skew that the
/// clock's w.h.p. guarantee keeps at ≤ 1.
pub fn stage_skew(states: &[ClockState]) -> u64 {
    let min = states.iter().map(|s| s.stage).min().unwrap_or(0);
    let max = states.iter().map(|s| s.stage).max().unwrap_or(0);
    max - min
}

/// State of the leader-driven clock used by the terminating variant
/// (Theorem 3.13): only the leader counts, so a single plain Chernoff bound
/// (no union over agents) controls the firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaderClock {
    /// Interactions the leader has witnessed since the last reset.
    pub count: u64,
    /// Set when the leader crossed its threshold.
    pub fired: bool,
}

impl LeaderClock {
    /// A fresh, unfired clock.
    pub fn new() -> Self {
        Self {
            count: 0,
            fired: false,
        }
    }

    /// Advances the clock by one witnessed interaction against `threshold`.
    pub fn tick(&mut self, threshold: u64) {
        if !self.fired {
            self.count += 1;
            if self.count >= threshold {
                self.fired = true;
            }
        }
    }

    /// Resets after a restart (e.g. the size estimate changed).
    pub fn reset(&mut self) {
        self.count = 0;
        self.fired = false;
    }
}

impl Default for LeaderClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::AgentSim;

    #[test]
    fn clock_advances_through_stages() {
        let mut sim = AgentSim::new(LeaderlessPhaseClock::default(), 300, 1);
        let out = sim.run_until_converged(|s| s.iter().all(|c| c.stage >= 3), 100_000.0);
        assert!(out.converged, "clock never reached stage 3");
    }

    #[test]
    fn stage_skew_stays_small_after_settling() {
        let n = 500;
        let mut sim = AgentSim::new(LeaderlessPhaseClock::default(), n, 2);
        // Let the estimate settle and a few stages elapse.
        let settle = sim.run_until_converged(|s| s.iter().all(|c| c.stage >= 2), 100_000.0);
        assert!(settle.converged);
        // Over the next stages, skew should never exceed 1 (sampled each
        // parallel-time unit).
        for _ in 0..200 {
            sim.run_for_time(1.0);
            let skew = stage_skew(sim.states());
            assert!(skew <= 1, "stage skew {skew} > 1");
        }
    }

    #[test]
    fn stage_duration_scales_with_estimate() {
        // Time per stage ≈ threshold/2 parallel time (each agent has ~2
        // interactions per unit). With the settled estimate s, expect the
        // time to go from stage 2 to stage 12 to be roughly 10·95·s/2,
        // within a generous band.
        let n = 400;
        let mut sim = AgentSim::new(LeaderlessPhaseClock::default(), n, 3);
        let r1 = sim.run_until_converged(|s| s.iter().all(|c| c.stage >= 2), 200_000.0);
        assert!(r1.converged);
        let s_est = sim.states()[0].estimate;
        let t0 = sim.time();
        let r2 = sim.run_until_converged(|s| s.iter().all(|c| c.stage >= 12), 400_000.0);
        assert!(r2.converged);
        let per_stage = (sim.time() - t0) / 10.0;
        let nominal = 95.0 * s_est as f64 / 2.0;
        assert!(
            per_stage > 0.5 * nominal && per_stage < 1.5 * nominal,
            "per-stage time {per_stage} vs nominal {nominal}"
        );
    }

    #[test]
    fn estimates_agree_after_epidemic() {
        let mut sim = AgentSim::new(LeaderlessPhaseClock::default(), 200, 4);
        sim.run_for_time(200.0);
        let est0 = sim.states()[0].estimate;
        assert!(sim.states().iter().all(|c| c.estimate == est0));
        assert!(est0 >= 3, "estimate includes the +2 offset");
    }

    #[test]
    fn leader_clock_fires_once() {
        let mut c = LeaderClock::new();
        for _ in 0..10 {
            c.tick(5);
        }
        assert!(c.fired);
        assert_eq!(c.count, 5, "count freezes at the threshold");
        c.reset();
        assert!(!c.fired);
        assert_eq!(c.count, 0);
    }
}
