//! The role partition in isolation (Subprotocol 2, Lemma 3.2).
//!
//! Agents start as `X` and split into `A`/`S` via three rules:
//!
//! ```text
//! X, X -> S, A        (receiver S, sender A — exactly half each)
//! X, A -> S, A        (an A recruits an S)
//! X, S -> A, S        (an S recruits an A)
//! ```
//!
//! The last two rules finish the partition in `O(log n)` time and are
//! self-balancing: conditioned on an X meeting a non-X, the probability the
//! X becomes A is `|S|/(|A|+|S|)` — a surplus of either role steers new
//! assignments toward the other. Lemma 3.2: `|A| ∈ [n/2 − a, n/2 + a]` with
//! probability `≥ 1 − e^{−2a²/n}` (the deviation is stochastically dominated
//! by a fair binomial's).

use pp_engine::batch::DeterministicCountProtocol;
use pp_engine::{count_of, Simulation};

use crate::state::Role;

/// The partition-only protocol, on the unified count representation: three
/// states, deterministic transitions — ideal for the batched engine, which
/// runs the `n = 10^6` sweeps of `table_partition` in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartitionOnly;

impl DeterministicCountProtocol for PartitionOnly {
    type State = Role;

    fn transition_det(&self, rec: Role, sen: Role) -> (Role, Role) {
        match (sen, rec) {
            (Role::X, Role::X) => (Role::S, Role::A),
            (Role::A, Role::X) => (Role::S, Role::A),
            (Role::S, Role::X) => (Role::A, Role::S),
            _ => (rec, sen),
        }
    }
}

/// Result of one partition run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartitionOutcome {
    /// Final count of role-A agents.
    pub a_count: usize,
    /// Final count of role-S agents.
    pub s_count: usize,
    /// Parallel time until no `X` remained.
    pub time: f64,
}

/// Runs the partition to completion on the count engines (batched at
/// scale).
pub fn run_partition(n: usize, seed: u64) -> PartitionOutcome {
    let (out, sim) = Simulation::count_builder(PartitionOnly)
        .size(n as u64)
        .uniform(Role::X)
        .seed(seed)
        .until(|view| count_of(view, &Role::X) == 0)
        .run();
    debug_assert!(out.converged);
    let a_count = sim.count(&Role::A) as usize;
    PartitionOutcome {
        a_count,
        s_count: n - a_count,
        time: out.time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_gets_a_role() {
        let out = run_partition(501, 1);
        assert_eq!(out.a_count + out.s_count, 501);
    }

    #[test]
    fn split_is_near_half_lemma_3_2() {
        // a = √(n ln n): deviation beyond it has probability ≤ 2/n².
        let n = 2_000usize;
        let a = ((n as f64) * (n as f64).ln()).sqrt();
        for seed in 0..10 {
            let out = run_partition(n, 100 + seed);
            let dev = (out.a_count as f64 - n as f64 / 2.0).abs();
            assert!(
                dev <= a,
                "seed {seed}: |A| = {} deviates {dev} > {a}",
                out.a_count
            );
        }
    }

    #[test]
    fn corollary_3_3_third_bounds() {
        for seed in 0..10 {
            let out = run_partition(300, 200 + seed);
            assert!(out.a_count >= 100 && out.a_count <= 200, "{}", out.a_count);
        }
    }

    #[test]
    fn partition_completes_in_logarithmic_time() {
        let t_small: f64 = (0..5).map(|s| run_partition(200, s).time).sum::<f64>() / 5.0;
        let t_large: f64 = (0..5)
            .map(|s| run_partition(20_000, 50 + s).time)
            .sum::<f64>()
            / 5.0;
        // 100x population, O(log n) ⇒ well under 3x time.
        assert!(
            t_large / t_small < 3.0,
            "partition not logarithmic: {t_small} -> {t_large}"
        );
    }
}
