//! Trajectory-neutral observability primitives for the simulation stack.
//!
//! *Part of layer 4 (the simulation surface) of the five-layer workspace — see `ARCHITECTURE.md` at the
//! repository root for the layer map and the three determinism
//! invariants every layer is held to.*
//!
//! The engines' adaptive machinery — batched↔sequential mode switching,
//! interner GC, the dense per-agent lane, the pair-outcome cache, null-skip
//! runs, snapshot checkpoints — is deliberately unobservable in the decoded
//! trajectory. This crate makes it observable *out of band*: a [`Metrics`]
//! handle holds plain atomic counters and log₂-bucket histograms that
//! instrumented code bumps at its existing decision points, plus an optional
//! structured event trace written as CRC-32-checksummed JSONL (the sweep
//! journal's line discipline).
//!
//! The contract every hook in the workspace honors: **telemetry consumes no
//! randomness and fires only at decision points the engine already visits**,
//! so a run with a `Metrics` handle attached is byte-for-byte identical to
//! the same run without one (`tests/telemetry_neutrality.rs` holds all four
//! engines to that).
//!
//! Everything here is `std`-only: counters are `AtomicU64` (relaxed — they
//! are statistics, not synchronization), histograms are 65 fixed log₂
//! buckets, and the trace serializer is the same hand-rolled JSON the
//! journal uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the one checksum shared by engine snapshots,
/// the sweep journal's JSONL lines, and this crate's event traces
/// (re-exported as `pp_engine::crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Monotone event counters, one per engine decision point. See each
/// variant for the exact site that bumps it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // the name() strings below are the documentation of record
pub enum Counter {
    /// Collision batches executed (`BatchedCountSim::run_batch`).
    Batches,
    /// Null-skip (Gillespie) steps taken, including the silent-configuration
    /// fast path (`BatchedCountSim::advance`).
    NullSkipRuns,
    /// Interactions skipped as certainly-null inside those steps.
    NullSkipped,
    /// Mid-run engine switches (`ConfigSim::switch_engine`, Auto mode).
    ModeSwitches,
    /// Switches that landed on the batched engine.
    SwitchesToBatched,
    /// Switches that landed on the sequential engine.
    SwitchesToSequential,
    /// Interner-GC passes (`ConfigSim::maybe_collect` / `collect_now`).
    GcPasses,
    /// Dead table entries evicted across all GC passes.
    GcEvicted,
    /// Dense per-agent lane episodes (`ConfigSim::advance`, sequential arm).
    DenseLaneEpisodes,
    /// Batches filled under the deterministic parallel subrange-fill
    /// discipline (`BatchedCountSim::fill_parallel`, `PP_THREADS`).
    ParallelFills,
    /// Subranges those parallel fills were split into.
    FillSubranges,
    /// Interactions executed inside dense-lane episodes.
    DenseLaneInteractions,
    /// Pair-outcome cache probes that replayed a memoized outcome.
    PairCacheHits,
    /// Pair-outcome cache probes that fell through to the full path.
    PairCacheMisses,
    /// Whole-cache drops on interner generation bumps (GC / dense lane).
    PairCacheGenDrops,
    /// Slot-index lookups (`SlotIndex::get` calls) across engine indices.
    SlotLookups,
    /// Total linear-probe steps those lookups walked.
    SlotProbes,
    /// Slot-index growth/rebuild sweeps.
    SlotRebuilds,
    /// Crash-recovery snapshots written (`Simulation` checkpoints).
    SnapshotWrites,
    /// Bytes serialized across those snapshot writes.
    SnapshotBytes,
    /// Wall-clock nanoseconds spent serializing + writing snapshots.
    SnapshotNanos,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 21] = [
        Counter::Batches,
        Counter::NullSkipRuns,
        Counter::NullSkipped,
        Counter::ModeSwitches,
        Counter::SwitchesToBatched,
        Counter::SwitchesToSequential,
        Counter::GcPasses,
        Counter::GcEvicted,
        Counter::DenseLaneEpisodes,
        Counter::DenseLaneInteractions,
        Counter::ParallelFills,
        Counter::FillSubranges,
        Counter::PairCacheHits,
        Counter::PairCacheMisses,
        Counter::PairCacheGenDrops,
        Counter::SlotLookups,
        Counter::SlotProbes,
        Counter::SlotRebuilds,
        Counter::SnapshotWrites,
        Counter::SnapshotBytes,
        Counter::SnapshotNanos,
    ];

    /// Stable snake_case name (journal/trace/report key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Batches => "batches",
            Counter::NullSkipRuns => "null_skip_runs",
            Counter::NullSkipped => "null_skipped",
            Counter::ModeSwitches => "mode_switches",
            Counter::SwitchesToBatched => "switches_to_batched",
            Counter::SwitchesToSequential => "switches_to_sequential",
            Counter::GcPasses => "gc_passes",
            Counter::GcEvicted => "gc_evicted",
            Counter::DenseLaneEpisodes => "dense_lane_episodes",
            Counter::DenseLaneInteractions => "dense_lane_interactions",
            Counter::ParallelFills => "parallel_fills",
            Counter::FillSubranges => "fill_subranges",
            Counter::PairCacheHits => "pair_cache_hits",
            Counter::PairCacheMisses => "pair_cache_misses",
            Counter::PairCacheGenDrops => "pair_cache_gen_drops",
            Counter::SlotLookups => "slot_lookups",
            Counter::SlotProbes => "slot_probes",
            Counter::SlotRebuilds => "slot_rebuilds",
            Counter::SnapshotWrites => "snapshot_writes",
            Counter::SnapshotBytes => "snapshot_bytes",
            Counter::SnapshotNanos => "snapshot_nanos",
        }
    }

    /// Inverse of [`Counter::name`]: resolves a stable snake_case name
    /// (as carried by journals and traces) back to the counter, or `None`
    /// for an unknown name — callers aggregating journaled counters into
    /// a live registry skip those rather than fail.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// Log₂-bucket histograms, one per sampled quantity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hist {
    /// Executed collision-batch lengths.
    BatchLen,
    /// Executed null-skip run lengths.
    NullSkipLen,
    /// Occupied support `k` read at each Auto switch decision.
    AdaptSupport,
    /// Mean batch length `E[T]` read at each Auto switch decision
    /// (rounded down to an integer for bucketing).
    AdaptMeanBatch,
    /// Backing-table size at the start of each GC pass.
    GcTableLen,
    /// Live support remaining after each GC pass.
    GcLive,
    /// Population expanded per dense-lane episode.
    DenseLaneN,
    /// Wall-clock nanoseconds per parallel batch fill (spawn + draw +
    /// merge; observation-only, never read back into a decision).
    FillNanos,
    /// Bytes per snapshot write.
    SnapshotWriteBytes,
}

impl Hist {
    /// Every histogram, in display order.
    pub const ALL: [Hist; 9] = [
        Hist::BatchLen,
        Hist::NullSkipLen,
        Hist::AdaptSupport,
        Hist::AdaptMeanBatch,
        Hist::GcTableLen,
        Hist::GcLive,
        Hist::DenseLaneN,
        Hist::FillNanos,
        Hist::SnapshotWriteBytes,
    ];

    /// Stable snake_case name (trace/report key).
    pub fn name(self) -> &'static str {
        match self {
            Hist::BatchLen => "batch_len",
            Hist::NullSkipLen => "null_skip_len",
            Hist::AdaptSupport => "adapt_support",
            Hist::AdaptMeanBatch => "adapt_mean_batch",
            Hist::GcTableLen => "gc_table_len",
            Hist::GcLive => "gc_live",
            Hist::DenseLaneN => "dense_lane_n",
            Hist::FillNanos => "fill_nanos",
            Hist::SnapshotWriteBytes => "snapshot_write_bytes",
        }
    }
}

/// Number of log₂ buckets: bucket 0 holds value 0, bucket `b ≥ 1` holds
/// `2^(b-1) ..= 2^b - 1`, so bucket 64 holds the top half of the `u64`
/// range.
pub const HIST_BUCKETS: usize = 65;

/// The log₂ bucket a value lands in (0 → 0, v → `64 - v.leading_zeros()`).
pub fn log2_bucket(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// One histogram's storage: count/sum/max plus the bucket array.
struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A structured trace event field value.
#[derive(Clone, Copy, Debug)]
pub enum TraceValue<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Float (written with Rust's shortest round-trip formatting).
    F64(f64),
    /// String (JSON-escaped).
    Str(&'a str),
}

/// Appends a JSON string literal (with escaping) to `out`.
fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The open trace stream behind [`Metrics::trace_to`].
struct Tracer {
    file: std::fs::File,
    /// Timestamp origin: `ts_us` in every event is microseconds since the
    /// tracer was attached.
    start: Instant,
}

/// Shared metrics registry + optional event trace.
///
/// Cheap to clone (an `Arc`); every clone observes and feeds the same
/// counters. Engines hold an `Option<Metrics>` and bump it at their
/// existing decision points; harnesses read it after (or during) the run.
/// Thread-safe throughout — a sweep can hand one handle to a trial running
/// nested simulations, or distinct handles to concurrent trials.
pub struct Metrics {
    inner: Arc<Inner>,
}

struct Inner {
    counters: [AtomicU64; Counter::ALL.len()],
    hists: [HistCell; Hist::ALL.len()],
    tracer: Mutex<Option<Tracer>>,
}

impl Clone for Metrics {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("counters", &self.nonzero_counters())
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// The ambient per-thread handle behind [`Metrics::install_current`].
    static CURRENT: RefCell<Vec<Metrics>> = const { RefCell::new(Vec::new()) };
}

/// Uninstalls the ambient handle when dropped (see
/// [`Metrics::install_current`]).
#[must_use = "dropping the guard immediately uninstalls the handle"]
pub struct CurrentGuard {
    _private: (),
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

impl Metrics {
    /// A fresh registry with every counter and histogram at zero.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: std::array::from_fn(|_| HistCell::new()),
                tracer: Mutex::new(None),
            }),
        }
    }

    /// Installs this handle as the calling thread's ambient metrics sink
    /// until the returned guard drops. Builders
    /// (`Simulation::builder(...).build()`) pick the ambient handle up
    /// when none was passed explicitly — this is how the sweep runner
    /// gives every trial a per-trial registry without threading a handle
    /// through every experiment closure. Installs nest (LIFO).
    pub fn install_current(&self) -> CurrentGuard {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        CurrentGuard { _private: () }
    }

    /// The calling thread's innermost ambient handle, if one is installed.
    pub fn current() -> Option<Metrics> {
        CURRENT.with(|c| c.borrow().last().cloned())
    }

    /// Adds `v` to a counter (relaxed; statistics, not synchronization).
    #[inline]
    pub fn add(&self, c: Counter, v: u64) {
        self.inner.counters[c as usize].fetch_add(v, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.inner.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Records one observation into a histogram (bucket + count/sum/max).
    pub fn record(&self, h: Hist, v: u64) {
        let cell = &self.inner.hists[h as usize];
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
        cell.max.fetch_max(v, Ordering::Relaxed);
        cell.buckets[log2_bucket(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Every counter with a non-zero value, in [`Counter::ALL`] order.
    pub fn nonzero_counters(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .filter_map(|&c| {
                let v = self.counter(c);
                (v > 0).then(|| (c.name(), v))
            })
            .collect()
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Counter::ALL.iter().map(|&c| self.counter(c)).collect(),
            hists: Hist::ALL
                .iter()
                .map(|&h| {
                    let cell = &self.inner.hists[h as usize];
                    HistSnapshot {
                        name: h.name(),
                        count: cell.count.load(Ordering::Relaxed),
                        sum: cell.sum.load(Ordering::Relaxed),
                        max: cell.max.load(Ordering::Relaxed),
                        buckets: cell
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, b)| {
                                let v = b.load(Ordering::Relaxed);
                                (v > 0).then_some((i, v))
                            })
                            .collect(),
                    }
                })
                .collect(),
        }
    }

    /// Shorthand for `self.snapshot().render_text()` — the greppable
    /// text exposition (see [`MetricsSnapshot::render_text`]).
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }

    /// Attaches a JSONL event trace to this handle, **appending** to
    /// `path` (append, not truncate, so a process building several
    /// simulations against one `PP_TRACE` target keeps every span; the
    /// reader tolerates a torn final line from a crash). Subsequent
    /// [`Metrics::trace_event`] calls write one CRC'd line each.
    ///
    /// # Errors
    ///
    /// Propagates the file-open failure.
    pub fn trace_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.as_ref())?;
        *self.inner.tracer.lock().expect("tracer lock poisoned") = Some(Tracer {
            file,
            start: Instant::now(),
        });
        Ok(())
    }

    /// Whether a trace stream is attached.
    pub fn is_tracing(&self) -> bool {
        self.inner
            .tracer
            .lock()
            .expect("tracer lock poisoned")
            .is_some()
    }

    /// Emits one structured trace event (no-op without an attached trace).
    /// The line is `{"ts_us":…,"event":…,<fields…>,"crc":"xxxxxxxx"}` —
    /// the journal's checksum discipline, one `write` call per line.
    pub fn trace_event(&self, event: &str, fields: &[(&str, TraceValue<'_>)]) {
        let mut guard = self.inner.tracer.lock().expect("tracer lock poisoned");
        let Some(tracer) = guard.as_mut() else {
            return;
        };
        let ts_us = tracer.start.elapsed().as_micros() as u64;
        let mut line = format!("{{\"ts_us\":{ts_us},\"event\":");
        write_json_str(&mut line, event);
        for (key, value) in fields {
            line.push(',');
            write_json_str(&mut line, key);
            line.push(':');
            match value {
                TraceValue::U64(v) => line.push_str(&v.to_string()),
                TraceValue::F64(v) if v.is_finite() => line.push_str(&v.to_string()),
                TraceValue::F64(_) => line.push_str("null"),
                TraceValue::Str(s) => write_json_str(&mut line, s),
            }
        }
        line.push('}');
        let crc = crc32(line.as_bytes());
        line.pop();
        line.push_str(&format!(",\"crc\":\"{crc:08x}\"}}\n"));
        // One write per line; failures are reported once, not per event.
        if let Err(e) = tracer.file.write_all(line.as_bytes()) {
            eprintln!("[pp-telemetry] trace write failed, disabling trace: {e}");
            *guard = None;
        }
    }

    /// Emits a `counters` trace event carrying every non-zero counter and
    /// every non-empty histogram's count/sum/max — the summary line
    /// `pp-report` renders. No-op without an attached trace.
    pub fn trace_counters(&self) {
        if !self.is_tracing() {
            return;
        }
        let snap = self.snapshot();
        let mut guard = self.inner.tracer.lock().expect("tracer lock poisoned");
        let Some(tracer) = guard.as_mut() else {
            return;
        };
        let ts_us = tracer.start.elapsed().as_micros() as u64;
        let mut line = format!("{{\"ts_us\":{ts_us},\"event\":\"counters\",\"counters\":{{");
        let mut first = true;
        for (name, value) in snap.nonzero_counters() {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&format!("\"{name}\":{value}"));
        }
        line.push_str("},\"hists\":{");
        let mut first = true;
        for hist in snap.hists.iter().filter(|h| h.count > 0) {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{}}}",
                hist.name, hist.count, hist.sum, hist.max
            ));
        }
        line.push_str("}}");
        let crc = crc32(line.as_bytes());
        line.pop();
        line.push_str(&format!(",\"crc\":\"{crc:08x}\"}}\n"));
        if let Err(e) = tracer.file.write_all(line.as_bytes()) {
            eprintln!("[pp-telemetry] trace write failed, disabling trace: {e}");
            *guard = None;
        }
    }
}

/// A point-in-time copy of a [`Metrics`] registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values in [`Counter::ALL`] order.
    pub counters: Vec<u64>,
    /// Histogram summaries in [`Hist::ALL`] order.
    pub hists: Vec<HistSnapshot>,
}

/// One histogram's snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Stable name ([`Hist::name`]).
    pub name: &'static str,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-zero `(bucket_index, count)` pairs (see [`log2_bucket`]).
    pub buckets: Vec<(usize, u64)>,
}

impl MetricsSnapshot {
    /// Every counter with a non-zero value, in [`Counter::ALL`] order.
    pub fn nonzero_counters(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .zip(&self.counters)
            .filter(|(_, &v)| v > 0)
            .map(|(&c, &v)| (c.name(), v))
            .collect()
    }

    /// Renders the snapshot in a greppable, Prometheus-flavored text
    /// format: one `pp_<counter> <value>` line per counter (zeros
    /// included, so `grep <name>` always hits), then
    /// `pp_hist_<name>_{count,sum,max}` triplets for every histogram
    /// that recorded at least one observation. This is the wire format
    /// of the sweep service's `GET /metrics` endpoint.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (c, v) in Counter::ALL.iter().zip(&self.counters) {
            out.push_str(&format!("pp_{} {v}\n", c.name()));
        }
        for h in &self.hists {
            if h.count == 0 {
                continue;
            }
            out.push_str(&format!("pp_hist_{}_count {}\n", h.name, h.count));
            out.push_str(&format!("pp_hist_{}_sum {}\n", h.name, h.sum));
            out.push_str(&format!("pp_hist_{}_max {}\n", h.name, h.max));
        }
        out
    }
}

/// One verified line of a JSONL trace file, CRC stripped and the closing
/// brace restored — ready for a JSON parser.
pub type TraceLine = String;

/// Reads a JSONL trace written by [`Metrics::trace_event`], verifying
/// every line's CRC. A torn **final** line (an interrupted write) is
/// dropped with a note on stderr; a bad checksum anywhere earlier is a
/// hard error naming the line. Returns the verified lines with their CRC
/// suffixes stripped.
///
/// # Errors
///
/// I/O failures and non-final corrupt lines.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<TraceLine>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace {}: {e}", path.display()))?;
    read_trace_str(&text, &path.display().to_string())
}

/// [`read_trace`] over in-memory text (the testable core).
pub fn read_trace_str(text: &str, origin: &str) -> Result<Vec<TraceLine>, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match strip_trace_crc(line) {
            Ok(original) => out.push(original),
            Err(e) if i + 1 == lines.len() => {
                eprintln!(
                    "[pp-telemetry] {origin}: dropping torn final line {}: {e}",
                    i + 1
                );
                break;
            }
            Err(e) => return Err(format!("trace {origin}: corrupt line {}: {e}", i + 1)),
        }
    }
    Ok(out)
}

/// Length of the fixed-width `,"crc":"xxxxxxxx"}` line suffix.
const CRC_SUFFIX_LEN: usize = 18;

/// Strips and verifies the CRC suffix, returning the line as originally
/// composed (closing `}` restored). Same discipline as the sweep journal.
fn strip_trace_crc(line: &str) -> Result<String, String> {
    let has_suffix = line.len() >= CRC_SUFFIX_LEN
        && line.is_char_boundary(line.len() - CRC_SUFFIX_LEN)
        && line[line.len() - CRC_SUFFIX_LEN..].starts_with(",\"crc\":\"")
        && line.ends_with("\"}");
    if !has_suffix {
        return Err("missing line checksum".into());
    }
    let split = line.len() - CRC_SUFFIX_LEN;
    let hex = &line[split + 8..line.len() - 2];
    let stored =
        u32::from_str_radix(hex, 16).map_err(|_| format!("malformed line checksum {hex:?}"))?;
    let original = format!("{}}}", &line[..split]);
    let computed = crc32(original.as_bytes());
    if computed != stored {
        return Err(format!(
            "line checksum mismatch (stored {stored:08x}, computed {computed:08x})"
        ));
    }
    Ok(original)
}

/// Resolves a trace destination the way the builders do: explicit path if
/// given, else the `PP_TRACE` environment variable (empty or
/// `off`/`0`/`false` mean disabled).
pub fn trace_path_from_env() -> Option<PathBuf> {
    let v = std::env::var("PP_TRACE").ok()?;
    let t = v.trim();
    if t.is_empty() || matches!(t.to_ascii_lowercase().as_str(), "off" | "0" | "false") {
        return None;
    }
    Some(PathBuf::from(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn log2_buckets_partition_the_range() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(7), 3);
        assert_eq!(log2_bucket(8), 4);
        assert_eq!(log2_bucket(u64::MAX), 64);
        // Bucket b >= 1 holds exactly 2^(b-1) ..= 2^b - 1.
        for b in 1..=20usize {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            assert_eq!(log2_bucket(lo), b, "low edge of bucket {b}");
            assert_eq!(log2_bucket(hi), b, "high edge of bucket {b}");
        }
    }

    #[test]
    fn histogram_records_count_sum_max_and_buckets() {
        let m = Metrics::new();
        for v in [0u64, 1, 5, 5, 300] {
            m.record(Hist::BatchLen, v);
        }
        let snap = m.snapshot();
        let h = &snap.hists[Hist::BatchLen as usize];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 311);
        assert_eq!(h.max, 300);
        let buckets: std::collections::BTreeMap<usize, u64> = h.buckets.iter().copied().collect();
        assert_eq!(buckets.get(&0), Some(&1)); // 0
        assert_eq!(buckets.get(&1), Some(&1)); // 1
        assert_eq!(buckets.get(&3), Some(&2)); // 5, 5
        assert_eq!(buckets.get(&9), Some(&1)); // 300 ∈ 256..511
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.incr(Counter::GcPasses);
        m2.add(Counter::GcPasses, 2);
        assert_eq!(m.counter(Counter::GcPasses), 3);
        assert_eq!(
            m.nonzero_counters(),
            vec![("gc_passes", 3)],
            "only non-zero counters are listed"
        );
    }

    #[test]
    fn ambient_install_nests_and_uninstalls() {
        assert!(Metrics::current().is_none());
        let a = Metrics::new();
        let b = Metrics::new();
        {
            let _ga = a.install_current();
            Metrics::current().unwrap().incr(Counter::Batches);
            {
                let _gb = b.install_current();
                Metrics::current().unwrap().incr(Counter::Batches);
            }
            Metrics::current().unwrap().incr(Counter::Batches);
        }
        assert!(Metrics::current().is_none());
        assert_eq!(a.counter(Counter::Batches), 2);
        assert_eq!(b.counter(Counter::Batches), 1);
    }

    #[test]
    fn trace_lines_round_trip_through_the_crc_reader() {
        let dir = std::env::temp_dir().join(format!("pp_telemetry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.trace.jsonl");
        let _ = std::fs::remove_file(&path);
        let m = Metrics::new();
        m.trace_to(&path).unwrap();
        m.trace_event(
            "mode_switch",
            &[
                ("to", TraceValue::Str("sequential")),
                ("support", TraceValue::U64(130)),
                ("mean_batch", TraceValue::F64(626.6)),
            ],
        );
        m.incr(Counter::GcPasses);
        m.record(Hist::GcLive, 42);
        m.trace_counters();
        let lines = read_trace(&path).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"mode_switch\""));
        assert!(lines[0].contains("\"support\":130"));
        assert!(lines[1].contains("\"gc_passes\":1"));
        assert!(lines[1].contains("\"gc_live\":{\"count\":1,\"sum\":42,\"max\":42}"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_but_earlier_corruption_is_fatal() {
        let m = Metrics::new();
        let dir = std::env::temp_dir().join(format!("pp_telemetry_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.trace.jsonl");
        let _ = std::fs::remove_file(&path);
        m.trace_to(&path).unwrap();
        m.trace_event("gc_pass", &[("evicted", TraceValue::U64(7))]);
        m.trace_event("gc_pass", &[("evicted", TraceValue::U64(9))]);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        // Torn final line: verified prefix survives.
        let torn = &full[..full.len() - 10];
        let lines = read_trace_str(torn, "torn").unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"evicted\":7"));

        // Same damage mid-file: hard error naming the line.
        let mut corrupted: Vec<&str> = full.lines().collect();
        let damaged = corrupted[0].replace("\"evicted\":7", "\"evicted\":8");
        corrupted[0] = &damaged;
        let joined = corrupted.join("\n");
        let err = read_trace_str(&joined, "corrupt").unwrap_err();
        assert!(err.contains("corrupt line 1"), "got: {err}");
    }

    #[test]
    fn trace_values_escape_and_format() {
        let mut s = String::new();
        write_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn env_trace_path_honors_off_semantics() {
        // Uses the documented parse rules without touching the (process
        // global) environment: PP_TRACE is unset under `cargo test`.
        assert!(trace_path_from_env().is_none());
    }

    #[test]
    fn counter_names_round_trip() {
        for &c in &Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("nope"), None);
    }

    #[test]
    fn text_exposition_is_greppable() {
        let m = Metrics::new();
        m.add(Counter::Batches, 12);
        m.record(Hist::BatchLen, 40);
        let text = m.render_text();
        // Every counter appears (zeros included), histograms only when
        // they recorded something.
        assert!(text.contains("pp_batches 12\n"));
        assert!(text.contains("pp_gc_passes 0\n"));
        assert!(text.contains("pp_hist_batch_len_count 1\n"));
        assert!(text.contains("pp_hist_batch_len_sum 40\n"));
        assert!(text.contains("pp_hist_batch_len_max 40\n"));
        assert_eq!(
            text.lines().filter(|l| !l.starts_with("pp_hist_")).count(),
            Counter::ALL.len()
        );
    }
}
