//! Statistical equivalence of the unified protocol layer: interned
//! `ConfigSim` runs must realize the same law as `AgentSim` runs of the
//! same protocol, and the batched engine's randomized paths must match the
//! sequential engine.
//!
//! Three layers of checks:
//!
//! 1. **Paper protocols across representations** — `Log-Size-Estimation`
//!    and cancellation/doubling majority, run both per-agent (`AgentSim`)
//!    and count-based (interned / native `ConfigSim`): output and
//!    convergence-time distributions compared with KS and binomial bounds.
//! 2. **Forced-batch randomized path** — a protocol with genuine finite
//!    outcome laws (`GeometricTimer`'s capped geometric) pushed through
//!    `run_batch` at tiny `n`, where the multinomial split, collision
//!    interaction, and law discovery fire constantly: total-variation
//!    comparison of whole final configurations against the sequential
//!    engine.
//! 3. **Coverage** — every protocol in `crates/core` and
//!    `crates/baselines` constructs and runs on `ConfigSim`.
//!
//! Trial counts honour the `PP_EQ_TRIALS` environment variable so CI can
//! run the suite in a reduced-trials mode on every push (correctness of the
//! bounds does not depend on the trial count — thresholds scale with it).

use uniform_sizeest::baselines::majority::{
    run_nonuniform_majority, run_nonuniform_majority_agentwise,
};
use uniform_sizeest::baselines::naive_terminating::{GeoState, GeometricTimer};
use uniform_sizeest::engine::batch::{BatchedCountSim, ConfigSim};
use uniform_sizeest::engine::count_sim::{CountConfiguration, CountSim};
use uniform_sizeest::engine::interned::Interned;
use uniform_sizeest::engine::rng::derive_seed;
use uniform_sizeest::protocols::log_size::{
    estimate_agentwise, estimate_counted, LogSizeEstimation,
};

mod common;
use common::{eq_trials, ks_statistic, ks_threshold};

/// Trials per engine for the distribution comparisons. Debug builds (plain
/// `cargo test`) default lower: the KS/binomial thresholds scale with the
/// trial count, so the bounds stay valid.
fn trials() -> u64 {
    eq_trials(if cfg!(debug_assertions) { 20 } else { 60 })
}

#[test]
fn log_size_estimation_agentwise_and_counted_agree() {
    // Reduced clock constants keep each run short without changing the
    // comparison: both representations run the *same* protocol instance,
    // so any divergence is an engine bug, not a protocol property.
    let protocol = LogSizeEstimation::with_constants(20, 3, 2);
    let n = 150;
    let trials = trials();
    let run = |counted: bool, stream: u64| {
        let mut times = Vec::new();
        let mut outputs = Vec::new();
        for t in 0..trials {
            let seed = derive_seed(stream, t);
            let out = if counted {
                estimate_counted(protocol, n, seed, None)
            } else {
                estimate_agentwise(protocol, n, seed, None)
            };
            assert!(out.converged, "run failed to converge");
            times.push(out.time);
            outputs.push(out.output.expect("converged run has output") as f64);
        }
        (times, outputs)
    };
    let (mut t_agent, o_agent) = run(false, 0xE10);
    let (mut t_count, o_count) = run(true, 0xE11);

    let d = ks_statistic(&mut t_agent, &mut t_count);
    let crit = ks_threshold(trials as usize, trials as usize);
    assert!(
        d < crit,
        "convergence-time distributions diverge: KS {d:.4} ≥ {crit:.4}"
    );

    // Output distributions: compare means within 3σ of the difference.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let var =
        |v: &[f64], m: f64| v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64;
    let (ma, mc) = (mean(&o_agent), mean(&o_count));
    let se = ((var(&o_agent, ma) + var(&o_count, mc)) / trials as f64).sqrt();
    assert!(
        (ma - mc).abs() < 3.0 * se.max(0.3),
        "output means diverge: agentwise {ma:.2} vs counted {mc:.2} (se {se:.3})"
    );
}

#[test]
fn majority_agentwise_and_counted_agree() {
    // 54%/46% split at n = 300: the gap sits near the √(n ln n) scale, so
    // the winner is genuinely random and both representations must produce
    // the same win probability and convergence-time distribution. The
    // counted run also exercises the non-uniform initial configuration
    // (CountSeededInit input split).
    let n = 300;
    let ones = 162;
    let trials = trials();
    let run = |counted: bool, stream: u64| {
        let mut wins = 0u64;
        let mut times = Vec::new();
        for t in 0..trials {
            let seed = derive_seed(stream, t);
            let out = if counted {
                run_nonuniform_majority(n, ones, seed, 1e7)
            } else {
                run_nonuniform_majority_agentwise(n, ones, seed, 1e7)
            };
            assert!(out.converged, "majority run failed to converge");
            wins += u64::from(out.winner == Some(1));
            times.push(out.time);
        }
        (wins as f64 / trials as f64, times)
    };
    let (p_agent, mut t_agent) = run(false, 0xE20);
    let (p_count, mut t_count) = run(true, 0xE21);

    let pooled = 0.5 * (p_agent + p_count);
    let sigma = (2.0 * pooled * (1.0 - pooled) / trials as f64).sqrt();
    assert!(
        (p_agent - p_count).abs() < 3.0 * sigma.max(0.02),
        "win rates diverge: agentwise {p_agent:.3} vs counted {p_count:.3} (σ {sigma:.3})"
    );
    let d = ks_statistic(&mut t_agent, &mut t_count);
    let crit = ks_threshold(trials as usize, trials as usize);
    assert!(
        d < crit,
        "convergence-time distributions diverge: KS {d:.4} ≥ {crit:.4}"
    );
}

/// Total-variation distance between final-configuration histograms of the
/// geometric-timer protocol at tiny `n`, where every batched code path
/// (fill, multinomial split over the capped-geometric law, collision
/// interaction, budget truncation, state discovery) fires constantly.
fn geometric_timer_tv(force_batch: bool) -> (f64, f64) {
    let n = 6u64;
    let steps = 5u64;
    // Histogram comparisons need far more trials than the KS tests, so the
    // `PP_EQ_TRIALS` knob enters with a ×100 multiplier (CI's 40 → 4,000).
    let trials = 100 * eq_trials(if cfg!(debug_assertions) { 150 } else { 400 });
    // Sampling noise alone gives TV ≈ √(K/(2π·trials)) for K ≈ 15 support
    // points; 2.5× that leaves headroom without masking real bugs (a
    // misweighted law shifts TV by Ω(0.05) at full trials).
    let bound = 2.5 * (15.0 / (2.0 * std::f64::consts::PI * trials as f64)).sqrt();
    let protocol = GeometricTimer { scale: 1 };
    let config = || CountConfiguration::uniform(GeoState::Fresh, n);
    let hist = |batched: bool, stream: u64| {
        let mut counts = std::collections::BTreeMap::new();
        for t in 0..trials {
            let seed = derive_seed(stream, t);
            // Key: (fresh, terminated) counts — a coarse but sensitive
            // projection of the configuration.
            let key = if batched {
                let mut sim = BatchedCountSim::new(protocol, config(), seed);
                if force_batch {
                    while sim.interactions() < steps {
                        sim.run_batch(steps - sim.interactions());
                    }
                } else {
                    sim.steps(steps);
                }
                assert_eq!(sim.interactions(), steps);
                (
                    sim.count(&GeoState::Fresh),
                    sim.count(&GeoState::Terminated),
                )
            } else {
                let mut sim = CountSim::new(protocol, config(), seed);
                sim.steps(steps);
                (
                    sim.config().count(&GeoState::Fresh),
                    sim.config().count(&GeoState::Terminated),
                )
            };
            *counts.entry(key).or_insert(0u64) += 1;
        }
        counts
    };
    let a = hist(false, 0xE30);
    let b = hist(true, 0xE31);
    let keys: std::collections::BTreeSet<_> = a.keys().chain(b.keys()).collect();
    let tv = keys
        .iter()
        .map(|k| {
            let p = *a.get(k).unwrap_or(&0) as f64 / trials as f64;
            let q = *b.get(k).unwrap_or(&0) as f64 / trials as f64;
            (p - q).abs()
        })
        .sum::<f64>()
        / 2.0;
    (tv, bound)
}

#[test]
fn randomized_forced_batch_path_matches_sequential() {
    let (tv, bound) = geometric_timer_tv(true);
    assert!(
        tv < bound,
        "forced-batch randomized configurations diverge: TV {tv:.4} ≥ {bound:.4}"
    );
}

#[test]
fn randomized_mode_chosen_path_matches_sequential() {
    let (tv, bound) = geometric_timer_tv(false);
    assert!(
        tv < bound,
        "mode-chosen randomized configurations diverge: TV {tv:.4} ≥ {bound:.4}"
    );
}

/// Every protocol in `crates/core` and `crates/baselines` runs on
/// `ConfigSim` — natively for count protocols, through the interning
/// adapter for agent-level ones. Steps a short prefix and checks population
/// conservation.
#[test]
fn every_protocol_runs_on_config_sim() {
    use uniform_sizeest::baselines as bl;
    use uniform_sizeest::protocols as core;

    const N: u64 = 600;
    const STEPS: u64 = 3_000;

    fn run_interned<P>(protocol: P)
    where
        P: uniform_sizeest::engine::protocol::Protocol,
        P::State: Eq + std::hash::Hash,
    {
        let interned = Interned::new(protocol);
        let config = interned.uniform_config(N);
        let mut sim = ConfigSim::new(interned, config, 42);
        sim.steps(STEPS);
        assert_eq!(sim.config_view().population_size(), N);
    }

    fn run_native<P>(protocol: P, config: CountConfiguration<P::State>)
    where
        P: uniform_sizeest::engine::count_sim::CountProtocol,
    {
        let mut sim = ConfigSim::new(protocol, config, 42);
        sim.steps(STEPS);
        assert_eq!(sim.config_view().population_size(), N);
    }

    // crates/core: the paper's protocols.
    run_interned(core::log_size::LogSizeEstimation::paper());
    run_interned(core::leader::LeaderTerminating::paper());
    run_interned(core::upper_bound::UpperBoundEstimation::paper());
    run_interned(core::synthetic::SyntheticCoinEstimation::paper());
    run_interned(core::synthetic_alternating::AlternatingCoinEstimation::paper());
    run_interned(core::aae_clock::AaePhaseClock);
    run_interned(core::aae_clock::AaeTerminating::paper());
    run_interned(core::phase_clock::LeaderlessPhaseClock::default());
    run_native(
        core::partition::PartitionOnly,
        CountConfiguration::uniform(core::state::Role::X, N),
    );
    run_interned(core::composition::Uniformize::new(
        bl::majority::MajorityDownstream::default(),
    ));

    // crates/baselines.
    run_native(
        bl::alistarh::WeakEstimator,
        CountConfiguration::uniform(bl::alistarh::WeakState::initial(), N),
    );
    run_native(
        bl::exact_backup::ExactBackup,
        CountConfiguration::uniform(bl::exact_backup::BackupState::Leader(0), N),
    );
    run_native(
        bl::intro_functions::Doubling,
        CountConfiguration::from_pairs([
            (bl::intro_functions::FnState::X, N / 4),
            (bl::intro_functions::FnState::Q, N - N / 4),
        ]),
    );
    run_native(
        bl::intro_functions::Halving,
        CountConfiguration::from_pairs([
            (bl::intro_functions::FnState::X, N / 2),
            (bl::intro_functions::FnState::Q, N - N / 2),
        ]),
    );
    run_native(
        bl::naive_terminating::FixedCounter { threshold: 40 },
        CountConfiguration::uniform(bl::naive_terminating::FixedState::Counting(0), N),
    );
    run_native(
        bl::naive_terminating::GeometricTimer::default(),
        CountConfiguration::uniform(bl::naive_terminating::GeoState::Fresh, N),
    );
    run_native(
        bl::majority::NonuniformMajority::for_population(N as usize),
        CountConfiguration::from_pairs([
            (bl::majority::NonuniformMajority::input_state(1), N / 3),
            (bl::majority::NonuniformMajority::input_state(0), N - N / 3),
        ]),
    );
    run_interned(bl::exact_leader::ExactLeaderCount::default());
    run_interned(core::composition::Uniformize::new(
        bl::leader_election::CoinTournament::default(),
    ));
}
