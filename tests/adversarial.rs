//! Failure injection: adversarially corrupted initial configurations.
//!
//! The paper's protocol assumes a clean leaderless start (all agents in
//! state `X`). It is **not** self-stabilizing — and cannot be: Cai, Izumi &
//! Wada (cited as \[19\]) show uniform self-stabilizing leader election is
//! impossible, and the same obstruction applies here. These tests *inject*
//! corrupted states and document exactly how the protocol degrades or
//! recovers:
//!
//! * an inflated `logSize2` **poisons the whole run** (the max-epidemic
//!   spreads it; restarts re-pace everything to the bogus value) — the
//!   estimate comes out near the planted value, not `log n`;
//! * a corrupted `output`/`protocol_done` pair on one agent is *contained*
//!   (outputs only propagate to agents that finished their own epochs);
//! * corrupted low fields (`time`, `gr`) are *washed out* by the normal
//!   restart machinery — the estimate stays in band.

use uniform_sizeest::engine::AgentSim;
use uniform_sizeest::protocols::log_size::{is_converged, LogSizeEstimation};
use uniform_sizeest::protocols::state::{MainState, Role};

fn run_corrupted(
    n: usize,
    seed: u64,
    corrupt: impl Fn(&mut MainState),
) -> (bool, Option<u64>, f64) {
    let mut sim = AgentSim::new(LogSizeEstimation::paper(), n, seed);
    let mut state = MainState::initial();
    corrupt(&mut state);
    sim.set_state(0, state);
    let budget = 4.0 * uniform_sizeest::protocols::log_size::default_time_budget(n as u64);
    let out = sim.run_until_converged(is_converged, budget);
    let output = if out.converged {
        sim.states()[0].output
    } else {
        None
    };
    (out.converged, output, out.time)
}

#[test]
fn inflated_logsize2_poisons_the_estimate() {
    // Plant logSize2 = 30 on one agent of n = 200 (true log n ≈ 7.6).
    // The epidemic spreads the bogus maximum; the protocol still converges
    // (to a much longer schedule) but the output is governed by the real
    // geometric samples — gr values stay honest — so the *estimate* stays
    // near log n while the *time* blows up to ~240·30².
    let n = 200;
    let (converged, output, time) = run_corrupted(n, 3, |s| {
        s.role = Role::A;
        s.log_size2 = 30;
    });
    assert!(converged, "corrupted run should still converge");
    let clean_time = uniform_sizeest::protocols::log_size::estimate_log_size(n, 4, None).time;
    assert!(
        time > 3.0 * clean_time,
        "poisoned schedule should be much slower: {time} vs clean {clean_time}"
    );
    // The output is an average of true geometric maxima — still sane.
    let k = output.unwrap() as f64;
    assert!(
        (k - (n as f64).log2()).abs() <= 6.7,
        "estimate {k} drifted out of the extended band"
    );
}

#[test]
fn corrupted_output_flag_is_contained() {
    // One agent claims protocol_done with a wild output before anything
    // ran. Outputs propagate only to agents that are themselves done, and
    // every honest agent finishes with the honest (epoch, sum) chain — so
    // the final common output must NOT be the planted 99.
    let n = 200;
    let (converged, output, _) = run_corrupted(n, 5, |s| {
        s.role = Role::S;
        s.protocol_done = true;
        s.output = Some(99);
    });
    assert!(converged);
    let k = output.unwrap();
    assert_ne!(k, 99, "planted output should not win");
    assert!(
        (k as f64 - (n as f64).log2()).abs() <= 6.7,
        "estimate {k} out of band despite containment"
    );
}

#[test]
fn corrupted_counters_wash_out() {
    // Huge time and gr on one agent: time fires the phase clock early once
    // (harmless — a restart or delivery absorbs it); gr inflates at most
    // one epoch's summand of one S-chain by a bounded amount... measure:
    // the run must converge with an estimate within the extended band.
    let n = 300;
    let (converged, output, _) = run_corrupted(n, 7, |s| {
        s.role = Role::A;
        s.time = 10_000;
        s.gr = 12; // plausible-looking but inflated geometric
    });
    assert!(converged);
    let k = output.unwrap() as f64;
    assert!(
        (k - (n as f64).log2()).abs() <= 6.7,
        "estimate {k} out of band"
    );
}

#[test]
fn planted_epoch_jump_does_not_deadlock() {
    // An agent claiming a far-future epoch drags the A population forward
    // (epoch epidemic) — epochs then lack deliveries, but Update-Sum's
    // catch-up branch and the S-chain reconciliation must keep the run
    // live. The key assertion is convergence, not accuracy.
    let n = 200;
    let (converged, output, _) = run_corrupted(n, 9, |s| {
        s.role = Role::A;
        s.log_size2 = 8;
        s.epoch = 20;
    });
    assert!(converged, "epoch jump deadlocked the protocol");
    assert!(output.is_some());
}

#[test]
fn many_corrupted_agents_still_converge() {
    // 10% of agents start with random-ish corrupted roles and counters.
    let n = 300;
    let mut sim = AgentSim::new(LogSizeEstimation::paper(), n, 21);
    for i in 0..(n / 10) {
        let mut s = MainState::initial();
        s.role = if i % 2 == 0 { Role::A } else { Role::S };
        s.time = (i as u64) * 17 % 500;
        s.epoch = (i as u64) % 4;
        s.gr = 1 + (i as u64) % 9;
        sim.set_state(i, s);
    }
    let budget = 4.0 * uniform_sizeest::protocols::log_size::default_time_budget(n as u64);
    let out = sim.run_until_converged(is_converged, budget);
    assert!(out.converged, "10% corruption prevented convergence");
}
