//! Integration tests for the §1.1 composition framework with its two
//! downstream clients, plus the standalone phase clocks.

use uniform_sizeest::baselines::leader_election::run_uniform_election;
use uniform_sizeest::baselines::majority::{
    run_nonuniform_majority, run_uniform_majority, MajorityDownstream,
};
use uniform_sizeest::protocols::aae_clock::time_for_phases;
use uniform_sizeest::protocols::composition::Downstream;
use uniform_sizeest::protocols::phase_clock::{stage_skew, LeaderlessPhaseClock};

#[test]
fn uniformized_majority_agrees_with_nonuniform_on_both_outcomes() {
    let n = 250;
    for (ones, expect) in [(160, 1u8), (90, 0u8)] {
        let uni = run_uniform_majority(n, ones, 11 + ones as u64, 1e8);
        let non = run_nonuniform_majority(n, ones, 13 + ones as u64, 1e8);
        assert!(uni.converged && non.converged);
        assert_eq!(uni.winner, Some(expect), "uniform wrong at ones={ones}");
        assert_eq!(non.winner, Some(expect), "nonuniform wrong at ones={ones}");
    }
}

#[test]
fn composition_overhead_is_constant_factor() {
    let n = 300;
    let uni = run_uniform_majority(n, 180, 21, 1e8);
    let non = run_nonuniform_majority(n, 180, 22, 1e8);
    assert!(uni.converged && non.converged);
    let overhead = uni.time / non.time;
    assert!(
        overhead < 10.0,
        "composition overhead {overhead} not a modest constant"
    );
}

#[test]
fn election_always_keeps_at_least_one_contender() {
    for seed in 0..4 {
        let out = run_uniform_election(150, 70 + seed, 1e8);
        assert!(out.converged);
        assert!(out.contenders >= 1, "seed {seed} eliminated everyone");
        assert!(out.contenders <= 5, "seed {seed} left {}", out.contenders);
    }
}

#[test]
fn majority_parameters_are_n_free() {
    // Structural uniformity: thresholds depend only on the estimate.
    let d = MajorityDownstream::default();
    for s in [5u64, 10, 20] {
        assert_eq!(d.num_stages(s), 4 * s);
        assert_eq!(d.stage_threshold(s), 95 * s);
    }
}

#[test]
fn phase_clock_skew_invariant_holds_under_long_runs() {
    let mut sim = pp_engine::AgentSim::new(LeaderlessPhaseClock::default(), 250, 31);
    // Settle.
    let settled = sim.run_until_converged(|s| s.iter().all(|c| c.stage >= 2), 1e6);
    assert!(settled.converged);
    for _ in 0..100 {
        sim.run_for_time(2.0);
        assert!(stage_skew(sim.states()) <= 1);
    }
}

#[test]
fn aae_clock_time_scales_with_phase_count() {
    let t30 = time_for_phases(300, 30, 41);
    let t120 = time_for_phases(300, 120, 42);
    let ratio = t120 / t30;
    assert!(
        (2.0..8.0).contains(&ratio),
        "4x phases should take ~4x time, got {ratio}"
    );
}
