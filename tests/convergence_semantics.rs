//! §2.1 semantics: convergence vs stabilization.
//!
//! The paper distinguishes *converging* (the output stops changing) from
//! *stabilizing* (no reachable configuration has a different output) and
//! notes that for its protocol the two coincide. Stabilization is not
//! directly observable in finite runs, but its observable shadow is: after
//! the convergence point, long continued execution never changes any
//! output. These tests check that shadow, plus footnote-13's argument that
//! converging executions stabilize w.p. 1 for bounded-reachability
//! protocols.

use uniform_sizeest::engine::AgentSim;
use uniform_sizeest::protocols::log_size::{is_converged, LogSizeEstimation};

#[test]
fn outputs_never_change_after_convergence() {
    let n = 150;
    for seed in [5u64, 6, 7] {
        let mut sim = AgentSim::new(LogSizeEstimation::paper(), n, seed);
        let out = sim.run_until_converged(is_converged, 1e7);
        assert!(out.converged, "seed {seed} did not converge");
        let outputs: Vec<Option<u64>> = sim.states().iter().map(|s| s.output).collect();
        // Run 5x the convergence time further: nothing may change.
        sim.run_for_time(5.0 * out.time);
        let later: Vec<Option<u64>> = sim.states().iter().map(|s| s.output).collect();
        assert_eq!(
            outputs, later,
            "seed {seed}: outputs changed after convergence — convergence ≠ stabilization here"
        );
    }
}

#[test]
fn converged_state_is_silent_on_outputs_but_not_frozen() {
    // The configuration is NOT silent (time counters keep ticking) — the
    // paper's distinction between a stable output and a silent
    // configuration (§4, citing [13]).
    let mut sim = AgentSim::new(LogSizeEstimation::paper(), 100, 11);
    let out = sim.run_until_converged(is_converged, 1e7);
    assert!(out.converged);
    let before: Vec<_> = sim.states().to_vec();
    sim.run_for_time(50.0);
    let after: Vec<_> = sim.states().to_vec();
    // Outputs identical...
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.output, a.output);
    }
    // ...but some internal field moved (role-A agents keep counting time).
    assert_ne!(before, after, "configuration should not be silent");
}

#[test]
fn convergence_time_equals_first_stable_output_time() {
    // Sample outputs on a fine cadence; the first time the output vector
    // equals its final value should match the detected convergence time
    // (within one cadence step).
    let n = 120;
    let seed = 13;
    let cadence = 50.0;
    let mut sim = AgentSim::new(LogSizeEstimation::paper(), n, seed);
    let mut history: Vec<(f64, Vec<Option<u64>>)> = Vec::new();
    let budget = 1e7;
    while sim.time() < budget {
        sim.run_for_time(cadence);
        history.push((sim.time(), sim.states().iter().map(|s| s.output).collect()));
        if is_converged(sim.states()) {
            break;
        }
    }
    let (t_conv, final_outputs) = history.last().cloned().expect("converged");
    // Find the first index whose outputs equal the final vector and which
    // never changes afterwards.
    let first_stable = history
        .iter()
        .position(|(_, o)| *o == final_outputs)
        .map(|i| history[i].0)
        .unwrap();
    assert!(
        (t_conv - first_stable).abs() <= cadence + 1e-9,
        "convergence detected at {t_conv} but outputs stable since {first_stable}"
    );
}
