//! Statistical-equivalence suite: the batched simulator must realize the
//! same stochastic process as the sequential one.
//!
//! [`BatchedCountSim`] is an *exact* reimplementation of [`CountSim`]'s
//! count process (uniform ordered pairs of distinct agents), so every
//! distribution either engine produces — completion times, outcome
//! frequencies, whole final configurations — must agree up to sampling
//! noise. These tests hold the two engines to that with KS-style bounds on
//! 200 seeded trials at `n = 10⁴` (epidemic completion times, approximate-
//! majority outcomes) plus a total-variation check on the full final-
//! configuration distribution at tiny `n`, where every code path (batch
//! fill, collision interaction, null skipping, state discovery) fires
//! constantly.

use uniform_sizeest::engine::batch::{BatchedCountSim, ConfigSim, DeterministicCountProtocol};
use uniform_sizeest::engine::count_sim::{CountConfiguration, CountSim};
use uniform_sizeest::engine::epidemic::InfectionEpidemic;
use uniform_sizeest::engine::rng::derive_seed;

mod common;
use common::{eq_trials, ks_statistic, ks_threshold};

#[test]
fn epidemic_completion_times_agree() {
    let n = 10_000u64;
    let trials = eq_trials(200);
    let config = || CountConfiguration::from_pairs([(false, n - 1), (true, 1)]);
    let mut seq: Vec<f64> = (0..trials)
        .map(|t| {
            let mut sim = CountSim::new(InfectionEpidemic, config(), derive_seed(0xE0, t));
            let out = sim.run_until(|c| c.count(&true) == n, n / 50, f64::MAX);
            assert!(out.converged);
            out.time
        })
        .collect();
    let mut bat: Vec<f64> = (0..trials)
        .map(|t| {
            let mut sim = BatchedCountSim::new(InfectionEpidemic, config(), derive_seed(0xE1, t));
            let out = sim.run_until(|c| c.count(&true) == n, n / 50, f64::MAX);
            assert!(out.converged);
            out.time
        })
        .collect();
    let d = ks_statistic(&mut seq, &mut bat);
    let crit = ks_threshold(trials as usize, trials as usize);
    assert!(
        d < crit,
        "completion-time distributions diverge: KS {d:.4} ≥ {crit:.4}"
    );
}

/// One-way approximate majority over `{A = 0, B = 1, U = 2}`: a receiver
/// holding the opposite opinion of its sender blanks out; a blank receiver
/// adopts the sender's opinion. Deterministic transitions, genuinely random
/// outcome when the initial split is close — ideal for comparing outcome
/// *distributions* between engines.
#[derive(Clone, Copy)]
struct ApproxMajority;

impl DeterministicCountProtocol for ApproxMajority {
    type State = u8;

    fn transition_det(&self, rec: u8, sen: u8) -> (u8, u8) {
        let rec2 = match (rec, sen) {
            (0, 1) | (1, 0) => 2,
            (2, 0) => 0,
            (2, 1) => 1,
            _ => rec,
        };
        (rec2, sen)
    }
}

/// Runs one approximate-majority trial to consensus; returns
/// `(a_won, consensus_time)`.
fn majority_outcome(sim: &mut ConfigSim<ApproxMajority>, n: u64) -> (bool, f64) {
    let out = sim.run_until(
        |c| c.count(&0) + c.count(&2) == n || c.count(&1) + c.count(&2) == n,
        n / 50,
        10_000.0,
    );
    assert!(out.converged, "approximate majority failed to converge");
    let a_won = sim.count(&1) == 0;
    (a_won, out.time)
}

#[test]
fn majority_outcome_distributions_agree() {
    // 51%/49% split: the initial gap (100) is below the √(n ln n) ≈ 300
    // scale where approximate majority becomes near-deterministic, so which
    // opinion wins is genuinely random and both engines must produce the
    // same win probability and the same consensus-time distribution.
    let n = 10_000u64;
    let trials = eq_trials(200);
    let config = || CountConfiguration::from_pairs([(0u8, 5_050), (1u8, 4_950)]);
    let run = |batched: bool, stream: u64| {
        let mut wins = 0u64;
        let mut times = Vec::new();
        for t in 0..trials {
            let seed = derive_seed(stream, t);
            let mut sim = if batched {
                ConfigSim::batched(ApproxMajority, config(), seed)
            } else {
                ConfigSim::sequential(ApproxMajority, config(), seed)
            };
            let (a_won, time) = majority_outcome(&mut sim, n);
            wins += u64::from(a_won);
            times.push(time);
        }
        (wins as f64 / trials as f64, times)
    };
    let (p_seq, mut t_seq) = run(false, 0xA0);
    let (p_bat, mut t_bat) = run(true, 0xA1);
    // Win-rate difference: 3σ two-sample binomial bound at the pooled rate.
    let pooled = 0.5 * (p_seq + p_bat);
    let sigma = (2.0 * pooled * (1.0 - pooled) / trials as f64).sqrt();
    assert!(
        (p_seq - p_bat).abs() < 3.0 * sigma.max(0.01),
        "win rates diverge: sequential {p_seq:.3} vs batched {p_bat:.3} (σ {sigma:.3})"
    );
    // Consensus-time distribution: KS bound as for the epidemic.
    let d = ks_statistic(&mut t_seq, &mut t_bat);
    let crit = ks_threshold(trials as usize, trials as usize);
    assert!(
        d < crit,
        "consensus-time distributions diverge: KS {d:.4} ≥ {crit:.4}"
    );
}

/// Pairwise annihilation `1 + 2 → 0 + 0` (receiver side): shrinks support
/// and discovers a state absent from the initial configuration.
#[derive(Clone, Copy)]
struct Annihilate;

impl DeterministicCountProtocol for Annihilate {
    type State = u8;

    fn transition_det(&self, rec: u8, sen: u8) -> (u8, u8) {
        if (rec == 1 && sen == 2) || (rec == 2 && sen == 1) {
            (0, 0)
        } else {
            (rec, sen)
        }
    }
}

/// Total-variation comparison of the *entire final configuration*
/// distribution after a fixed number of interactions at tiny `n`. At this
/// scale every batch is boundary-length, collisions fire constantly, and
/// the null-skip mode engages near absorption — a sharp microscope for
/// pair-level law errors that coarse statistics would smear out.
/// How the batched engine advances in the tiny-`n` TV test: through the
/// mode-choosing `advance` (steps), or forced through `run_batch` so the
/// batch fill, lumped pairing, and collision-interaction paths are
/// exercised even where `advance` would prefer the null-skip mode.
#[derive(Clone, Copy)]
enum Engine {
    Sequential,
    Batched,
    ForcedBatch,
}

fn tiny_population_tv(engines: (Engine, Engine)) -> f64 {
    let n_each = 4u64; // population 8: states 1 and 2, four agents each
    let steps = 6u64;
    let trials = 60_000u64;
    let config = || CountConfiguration::from_pairs([(1u8, n_each), (2u8, n_each)]);
    // Final configuration keyed by (count₀, count₁) — count₂ is determined.
    let hist = |engine: Engine, stream: u64| {
        let mut counts = std::collections::BTreeMap::new();
        for t in 0..trials {
            let seed = derive_seed(stream, t);
            let key = match engine {
                Engine::Sequential => {
                    let mut sim = CountSim::new(Annihilate, config(), seed);
                    sim.steps(steps);
                    (sim.config().count(&0), sim.config().count(&1))
                }
                Engine::Batched => {
                    let mut sim = BatchedCountSim::new(Annihilate, config(), seed);
                    sim.steps(steps);
                    assert_eq!(sim.interactions(), steps);
                    (sim.count(&0), sim.count(&1))
                }
                Engine::ForcedBatch => {
                    let mut sim = BatchedCountSim::new(Annihilate, config(), seed);
                    while sim.interactions() < steps {
                        sim.run_batch(steps - sim.interactions());
                    }
                    assert_eq!(sim.interactions(), steps);
                    (sim.count(&0), sim.count(&1))
                }
            };
            *counts.entry(key).or_insert(0u64) += 1;
        }
        counts
    };
    let a = hist(engines.0, 0xC0);
    let b = hist(engines.1, 0xC1);
    let keys: std::collections::BTreeSet<_> = a.keys().chain(b.keys()).collect();
    keys.iter()
        .map(|k| {
            let p = *a.get(k).unwrap_or(&0) as f64 / trials as f64;
            let q = *b.get(k).unwrap_or(&0) as f64 / trials as f64;
            (p - q).abs()
        })
        .sum::<f64>()
        / 2.0
}

/// Total-variation bound for the tiny-`n` histograms: sampling noise alone
/// gives TV ≈ √(K/(2π·trials)) ≈ 0.006 for K ≈ 15 support points; 0.02
/// leaves 3× headroom while still catching any real discrepancy (a
/// misweighted pair type shifts TV by Ω(0.05)).
const TV_BOUND: f64 = 0.02;

#[test]
fn tiny_population_configuration_distributions_agree() {
    let tv = tiny_population_tv((Engine::Sequential, Engine::Batched));
    assert!(
        tv < TV_BOUND,
        "final-configuration distributions diverge: TV {tv:.4}"
    );
}

#[test]
fn tiny_population_forced_batch_path_agrees() {
    // `advance` prefers the null-skip mode at this scale, so force the
    // collision-batch machinery (fill, lumped pairing, collision
    // interaction, budget truncation) and hold it to the same law.
    let tv = tiny_population_tv((Engine::Sequential, Engine::ForcedBatch));
    assert!(
        tv < TV_BOUND,
        "forced-batch configuration distributions diverge: TV {tv:.4}"
    );
}

#[test]
fn facade_engines_agree_on_epidemic_mean_time() {
    // Cross-check through the ConfigSim facade with moderate trial counts:
    // mean completion times within 4 standard errors.
    let n = 10_000u64;
    let trials = 60u64;
    let config = || CountConfiguration::from_pairs([(false, n - 1), (true, 1)]);
    let mean_time = |batched: bool, stream: u64| -> (f64, f64) {
        let times: Vec<f64> = (0..trials)
            .map(|t| {
                let seed = derive_seed(stream, t);
                let mut sim = if batched {
                    ConfigSim::batched(InfectionEpidemic, config(), seed)
                } else {
                    ConfigSim::sequential(InfectionEpidemic, config(), seed)
                };
                let out = sim.run_until(|c| c.count(&true) == n, n / 50, f64::MAX);
                assert!(out.converged);
                out.time
            })
            .collect();
        let mean = times.iter().sum::<f64>() / trials as f64;
        let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (trials - 1) as f64;
        (mean, (var / trials as f64).sqrt())
    };
    let (m_seq, se_seq) = mean_time(false, 0xD0);
    let (m_bat, se_bat) = mean_time(true, 0xD1);
    let se = (se_seq * se_seq + se_bat * se_bat).sqrt();
    assert!(
        (m_seq - m_bat).abs() < 4.0 * se,
        "mean completion times diverge: {m_seq:.3} vs {m_bat:.3} (se {se:.3})"
    );
}
