//! Crash-recovery round trips: a snapshot taken mid-run must restore an
//! engine that continues **byte-for-byte identically** to the original —
//! same configuration, same interaction clock, same time bits, same RNG
//! stream — across all four engines (`AgentSim`, `CountSim`,
//! `BatchedCountSim`, adaptive `ConfigSim`) and the interned adapter.
//!
//! The kill points are proptest-random, so snapshots land at arbitrary
//! interactions (mid-batch schedules, post-GC interner tables, adaptive
//! mode switches), not just friendly boundaries.

use std::path::PathBuf;

use proptest::prelude::*;
use uniform_sizeest::engine::epidemic::{InfectionEpidemic, MaxEpidemic};
use uniform_sizeest::engine::simulation::SimMode;
use uniform_sizeest::engine::{EngineMode, Simulation};

/// A unique scratch path per test case (cases run concurrently).
fn temp_snapshot(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("pp-snapshot-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}-{case:016x}.ppsnap", std::process::id()))
}

/// Drives both simulations forward in lock-step chunks, asserting the
/// decoded configuration, interaction clock, and exact time bits agree
/// before every chunk. Sensitive to any RNG-stream divergence: a single
/// differing draw desynchronizes the configurations within a chunk.
fn assert_identical_continuation<S: Clone + Ord + std::fmt::Debug>(
    a: &mut Simulation<S>,
    b: &mut Simulation<S>,
    chunk: u64,
    chunks: usize,
) {
    for i in 0..=chunks {
        assert_eq!(
            a.interactions(),
            b.interactions(),
            "clock diverged at chunk {i}"
        );
        assert_eq!(
            a.time().to_bits(),
            b.time().to_bits(),
            "time bits diverged at chunk {i}"
        );
        let mut va = a.view();
        let mut vb = b.view();
        va.sort();
        vb.sort();
        assert_eq!(va, vb, "configuration diverged at chunk {i}");
        if i < chunks {
            a.steps(chunk);
            b.steps(chunk);
        }
    }
}

/// One count-engine case: warm up, snapshot, resume, continue both.
fn count_case(mode: EngineMode, seed: u64, n: u64, warmup: u64, tag: &str) {
    let path = temp_snapshot(tag, seed ^ (n << 32) ^ warmup);
    let mut original = Simulation::count_builder(InfectionEpidemic)
        .config([(true, 1), (false, n - 1)])
        .seed(seed)
        .mode(mode)
        .checkpoint_to(&path)
        .build();
    if warmup > 0 {
        original.steps(warmup);
    }
    original.snapshot_to(&path).unwrap();
    let mut restored = Simulation::resume_count(InfectionEpidemic, &path).unwrap();
    assert_identical_continuation(&mut original, &mut restored, n.max(16), 5);
    let _ = std::fs::remove_file(&path);
}

/// One agent-protocol case (plain agent array or the interned count
/// engines): distinct initial values keep the interner churning.
fn agent_case(mode: SimMode, seed: u64, n: u64, warmup: u64, tag: &str) {
    let path = temp_snapshot(tag, seed ^ (n << 32) ^ warmup);
    let mut original = Simulation::builder(MaxEpidemic)
        .size(n)
        .seed(seed)
        .mode(mode)
        .init_with(|i, _| i as u64)
        .checkpoint_to(&path)
        .build();
    if warmup > 0 {
        original.steps(warmup);
    }
    original.snapshot_to(&path).unwrap();
    let mut restored = Simulation::resume(MaxEpidemic, &path).unwrap();
    assert_identical_continuation(&mut original, &mut restored, n.max(16), 5);
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sequential_count_engine_round_trips(seed in any::<u64>(), n in 20u64..300, warmup in 0u64..4000) {
        count_case(EngineMode::Sequential, seed, n, warmup, "seq");
    }

    #[test]
    fn batched_count_engine_round_trips(seed in any::<u64>(), n in 20u64..300, warmup in 0u64..4000) {
        count_case(EngineMode::Batched, seed, n, warmup, "batched");
    }

    #[test]
    fn adaptive_count_engine_round_trips(seed in any::<u64>(), n in 20u64..300, warmup in 0u64..4000) {
        count_case(EngineMode::Auto, seed, n, warmup, "auto");
    }

    #[test]
    fn agent_engine_round_trips(seed in any::<u64>(), n in 20u64..200, warmup in 0u64..2000) {
        agent_case(SimMode::Agent, seed, n, warmup, "agent");
    }

    #[test]
    fn interned_count_engine_round_trips(seed in any::<u64>(), n in 20u64..200, warmup in 0u64..2000) {
        agent_case(SimMode::Count(EngineMode::Auto), seed, n, warmup, "interned");
    }

    // The in-process fault-injection drill: kill a checkpointing run at
    // a random interaction (drop it — nothing outlives the snapshot
    // file), resume from disk, and require the revived run to match an
    // uninterrupted reference that never checkpointed at all.
    #[test]
    fn killed_at_random_interaction_resumes_to_the_uninterrupted_run(
        seed in any::<u64>(),
        n in 20u64..300,
        kill_at in 1u64..5000,
    ) {
        let extra = 4 * n;
        let mut reference = Simulation::count_builder(InfectionEpidemic)
            .config([(true, 1), (false, n - 1)])
            .seed(seed)
            .build();
        reference.steps(kill_at + extra);

        let path = temp_snapshot("kill", seed ^ (n << 32) ^ kill_at);
        let mut victim = Simulation::count_builder(InfectionEpidemic)
            .config([(true, 1), (false, n - 1)])
            .seed(seed)
            .checkpoint_to(&path)
            .build();
        victim.steps(kill_at);
        victim.snapshot_to(&path).unwrap();
        drop(victim); // the "SIGKILL": only the snapshot file survives

        let mut revived = Simulation::resume_count(InfectionEpidemic, &path).unwrap();
        revived.steps(extra);

        prop_assert_eq!(revived.interactions(), reference.interactions());
        prop_assert_eq!(revived.time().to_bits(), reference.time().to_bits());
        let mut va = revived.view();
        let mut vb = reference.view();
        va.sort();
        vb.sort();
        prop_assert_eq!(va, vb);
        let _ = std::fs::remove_file(&path);
    }
}

/// `run()` writes a snapshot at budget exhaustion, so a run that dies
/// right after its time budget (or is simply stopped) resumes into a
/// longer budget exactly where it left off — matching an uninterrupted
/// run with the longer budget from the start.
#[test]
fn budget_exhaustion_checkpoint_resumes_into_a_longer_run() {
    let n = 500u64;
    let seed = 42;
    let build = || {
        Simulation::count_builder(InfectionEpidemic)
            .config([(true, 1), (false, n - 1)])
            .seed(seed)
    };

    let mut reference = build().max_time(8.0).build();
    reference.run();

    let path = temp_snapshot("budget", seed);
    let mut victim = build().max_time(4.0).checkpoint_to(&path).build();
    victim.run(); // exhausts the 4.0 budget and checkpoints there
    drop(victim);

    let mut revived = build().max_time(8.0).resume(&path).unwrap();
    revived.run();

    assert_eq!(revived.interactions(), reference.interactions());
    assert_eq!(revived.time().to_bits(), reference.time().to_bits());
    let mut va = revived.view();
    let mut vb = reference.view();
    va.sort();
    vb.sort();
    assert_eq!(va, vb);
    let _ = std::fs::remove_file(&path);
}

/// Corrupted snapshots are rejected loudly, never half-restored, and the
/// engine tags are cross-checked against the resume surface.
#[test]
fn corrupt_and_mismatched_snapshots_are_refused() {
    let n = 100u64;
    let path = temp_snapshot("corrupt", 7);
    let sim = Simulation::count_builder(InfectionEpidemic)
        .config([(true, 1), (false, n - 1)])
        .seed(3)
        .checkpoint_to(&path)
        .build();
    sim.snapshot_to(&path).unwrap();

    // Flip one body byte: the checksum must catch it.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let err = Simulation::resume_count(InfectionEpidemic, &path).unwrap_err();
    assert!(err.to_string().contains("checksum"), "{err}");

    // Restore the valid snapshot: a count snapshot must not resume an
    // agent-protocol simulation.
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert!(Simulation::resume_count(InfectionEpidemic, &path).is_ok());
    let err = Simulation::resume(MaxEpidemic, &path).unwrap_err();
    assert!(err.to_string().contains("cannot resume"), "{err}");
    let _ = std::fs::remove_file(&path);
}
