//! Builder-vs-legacy equivalence: for fixed seeds, the `Simulation`
//! builder reproduces **byte-identical** outcomes to the free functions'
//! pre-builder bodies.
//!
//! Each test re-implements one deprecated/migrated free function the way
//! it was written before the unified API — direct `AgentSim` /
//! `CountSim` / `ConfigSim` construction, hand-rolled `run_until` loops —
//! and asserts exact equality (`==`, not statistical closeness) against
//! the function's current builder-backed implementation. This pins down
//! the builder's contract: same engine construction order, same RNG
//! stream, same checkpoint cadence, same observation points.
//!
//! (This file is the sanctioned home for direct engine constructions
//! outside `pp-engine`; everything else goes through the builder.)

use uniform_sizeest::baselines::alistarh::{weak_estimate, WeakEstimator, WeakState};
use uniform_sizeest::baselines::exact_backup::{
    run_backup, BackupOutcome, BackupState, ExactBackup,
};
use uniform_sizeest::baselines::exact_leader::{
    run_exact_count, CountOutcome, CountState, ExactLeaderCount,
};
use uniform_sizeest::baselines::majority::{
    run_nonuniform_majority, NonuniformMajority, SeededNonuniformMajority,
};
use uniform_sizeest::engine::batch::ConfigSim;
use uniform_sizeest::engine::count_sim::CountConfiguration;
use uniform_sizeest::engine::epidemic::{epidemic_completion_time, InfectionEpidemic};
use uniform_sizeest::engine::interned::Interned;
use uniform_sizeest::engine::AgentSim;
use uniform_sizeest::protocols::leader::{
    run_terminating_agentwise, run_terminating_counted, LeaderState, LeaderTerminating,
    TerminatingOutcome,
};
use uniform_sizeest::protocols::log_size::{
    estimate_agentwise, is_converged, is_converged_counts, EstimateOutcome, FieldMaxima,
    LogSizeEstimation,
};
use uniform_sizeest::protocols::partition::{run_partition, PartitionOnly, PartitionOutcome};
use uniform_sizeest::protocols::state::Role;

/// The pre-builder body of `estimate_log_size` (then agent-engine), verbatim;
/// `estimate_agentwise` is its builder-backed successor.
fn legacy_estimate_log_size(n: usize, seed: u64, budget: f64) -> EstimateOutcome {
    let mut sim = AgentSim::new(LogSizeEstimation::paper(), n, seed);
    let mut maxima = FieldMaxima::default();
    let out = sim.run_until_converged(
        |states| {
            for s in states {
                maxima.absorb(s);
            }
            is_converged(states)
        },
        budget,
    );
    let output = if out.converged {
        sim.states()[0].output
    } else {
        None
    };
    EstimateOutcome {
        output,
        time: out.time,
        converged: out.converged,
        maxima,
    }
}

#[test]
fn estimate_agentwise_matches_legacy_agent_sim_byte_for_byte() {
    for (n, seed) in [(100usize, 7u64), (150, 8), (200, 9)] {
        let budget = 1e7;
        let legacy = legacy_estimate_log_size(n, seed, budget);
        let built = estimate_agentwise(LogSizeEstimation::paper(), n, seed, Some(budget));
        assert!(legacy.converged);
        assert_eq!(legacy, built, "n={n} seed={seed}");
    }
}

/// The pre-builder body of `estimate_log_size_counted` (interned
/// `ConfigSim`), verbatim.
fn legacy_estimate_counted(n: usize, seed: u64, budget: f64) -> EstimateOutcome {
    let interned = Interned::new(LogSizeEstimation::paper());
    let handle = interned.handle();
    let config = interned.uniform_config(n as u64);
    let mut sim = ConfigSim::new(interned, config, seed);
    let mut maxima = FieldMaxima::default();
    let out = sim.run_until(
        |c| {
            let decoded = handle.decode(c);
            for (s, _) in &decoded {
                maxima.absorb(s);
            }
            is_converged_counts(&decoded)
        },
        n as u64,
        budget,
    );
    let output = if out.converged {
        handle
            .decode(&sim.config_view())
            .first()
            .and_then(|(s, _)| s.output)
    } else {
        None
    };
    EstimateOutcome {
        output,
        time: out.time,
        converged: out.converged,
        maxima,
    }
}

#[test]
fn estimate_log_size_counted_matches_legacy_config_sim_byte_for_byte() {
    use uniform_sizeest::protocols::log_size::estimate_log_size_counted;
    for (n, seed) in [(100usize, 17u64), (150, 18)] {
        let budget = 1e7;
        let legacy = legacy_estimate_counted(n, seed, budget);
        let built = estimate_log_size_counted(n, seed, Some(budget));
        assert!(legacy.converged);
        assert_eq!(legacy, built, "n={n} seed={seed}");
    }
}

fn finish_terminating(
    counts: std::collections::BTreeMap<u64, u64>,
    n: usize,
    termination_time: f64,
    all_frozen_time: f64,
) -> TerminatingOutcome {
    let (output, agreement) = counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map(|(o, c)| (Some(o), c as f64 / n as f64))
        .unwrap_or((None, 0.0));
    TerminatingOutcome {
        termination_time,
        all_frozen_time,
        output,
        agreement,
        terminated: true,
    }
}

/// The pre-builder body of `run_terminating` (then agent-engine, planted
/// leader via `set_state`), verbatim.
fn legacy_run_terminating(n: usize, seed: u64, max_time: f64) -> TerminatingOutcome {
    let mut sim = AgentSim::new(LeaderTerminating::paper(), n, seed);
    sim.set_state(0, LeaderState::leader());
    let fired = sim.run_until_converged(|s| s.iter().any(|a| a.terminated), max_time);
    assert!(fired.converged, "legacy harness expects termination");
    let termination_time = fired.time;
    let frozen = sim.run_until_converged(|s| s.iter().all(|a| a.terminated), max_time);
    let mut counts = std::collections::BTreeMap::new();
    for s in sim.states() {
        if let Some(o) = s.main.output {
            *counts.entry(o).or_insert(0u64) += 1;
        }
    }
    finish_terminating(counts, n, termination_time, frozen.time)
}

#[test]
fn run_terminating_agentwise_matches_legacy_agent_sim_byte_for_byte() {
    let (n, seed) = (100usize, 31u64);
    let legacy = legacy_run_terminating(n, seed, 5e6);
    let built = run_terminating_agentwise(n, seed, 5e6);
    assert_eq!(legacy, built);
}

/// The pre-builder body of `run_terminating_counted` (interned count
/// engine, planted leader as a non-uniform configuration), verbatim.
fn legacy_run_terminating_counted(n: usize, seed: u64, max_time: f64) -> TerminatingOutcome {
    let interned = Interned::new(LeaderTerminating::paper());
    let handle = interned.handle();
    let config = interned.config_from_pairs([
        (LeaderState::leader(), 1),
        (LeaderState::initial(), n as u64 - 1),
    ]);
    let mut sim = ConfigSim::new(interned, config, seed);
    let check = n as u64;
    let fired = sim.run_until(
        |c| handle.decode(c).iter().any(|(s, _)| s.terminated),
        check,
        max_time,
    );
    assert!(fired.converged, "legacy harness expects termination");
    let termination_time = fired.time;
    let frozen = sim.run_until(
        |c| handle.decode(c).iter().all(|(s, _)| s.terminated),
        check,
        max_time,
    );
    let mut counts = std::collections::BTreeMap::new();
    for (s, k) in handle.decode(&sim.config_view()) {
        if let Some(o) = s.main.output {
            *counts.entry(o).or_insert(0u64) += k;
        }
    }
    finish_terminating(counts, n, termination_time, frozen.time)
}

#[test]
fn run_terminating_counted_matches_legacy_config_sim_byte_for_byte() {
    let (n, seed) = (80usize, 41u64);
    let legacy = legacy_run_terminating_counted(n, seed, 5e6);
    let built = run_terminating_counted(n, seed, 5e6);
    assert_eq!(legacy, built);
}

#[test]
fn run_partition_matches_legacy_config_sim_byte_for_byte() {
    for (n, seed) in [(500usize, 3u64), (5_000, 4), (10_000, 5)] {
        let legacy: PartitionOutcome = {
            let config = CountConfiguration::uniform(Role::X, n as u64);
            let mut sim = ConfigSim::new(PartitionOnly, config, seed);
            let out = sim.run_until(|c| c.count(&Role::X) == 0, n as u64, f64::MAX);
            assert!(out.converged);
            let a_count = sim.count(&Role::A) as usize;
            PartitionOutcome {
                a_count,
                s_count: n - a_count,
                time: out.time,
            }
        };
        let built = run_partition(n, seed);
        assert_eq!(legacy, built, "n={n} seed={seed}");
    }
}

#[test]
fn epidemic_completion_time_matches_legacy_config_sim_byte_for_byte() {
    // Spans the sequential (small n) and batched (large n) regimes.
    for (n, seed) in [(1_000u64, 11u64), (20_000, 12)] {
        let legacy = {
            let config = CountConfiguration::from_pairs([(false, n - 1), (true, 1)]);
            let mut sim = ConfigSim::new(InfectionEpidemic, config, seed);
            let out = sim.run_until(|c| c.count(&true) == n, (n / 10).max(1), f64::MAX);
            assert!(out.converged);
            out.time
        };
        let built = epidemic_completion_time(n, seed);
        assert_eq!(legacy, built, "n={n} seed={seed}");
    }
}

#[test]
fn weak_estimate_matches_legacy_config_sim_byte_for_byte() {
    for (n, seed) in [(500usize, 21u64), (6_000, 22)] {
        let legacy = {
            let n = n as u64;
            let config = CountConfiguration::uniform(WeakState::initial(), n);
            let mut sim = ConfigSim::new(WeakEstimator, config, seed);
            let out = sim.run_until(WeakEstimator::agreed, n.max(2), f64::MAX);
            assert!(out.converged);
            let estimate = sim
                .config_view()
                .iter()
                .map(|(s, _)| s.value)
                .max()
                .unwrap_or(0);
            (estimate, out.time)
        };
        let built = weak_estimate(n, seed);
        assert_eq!(legacy, (built.estimate, built.time), "n={n} seed={seed}");
    }
}

#[test]
fn run_backup_matches_legacy_config_sim_byte_for_byte() {
    for (n, seed) in [(300u64, 5u64), (1_000, 6)] {
        let legacy: BackupOutcome = {
            let config = CountConfiguration::uniform(BackupState::Leader(0), n);
            let mut sim = ConfigSim::new(ExactBackup, config, seed);
            let out = sim.run_until(
                |c| {
                    c.iter().all(|(s, &k)| match s {
                        BackupState::Leader(_) => k <= 1,
                        BackupState::Follower(_) => true,
                    })
                },
                (n / 4).max(1),
                f64::MAX,
            );
            assert!(out.converged);
            let final_config = sim.config_view();
            let mut leader_levels: Vec<u32> = final_config
                .iter()
                .filter_map(|(s, &k)| match s {
                    BackupState::Leader(i) if k > 0 => Some(*i),
                    _ => None,
                })
                .collect();
            leader_levels.sort_unstable();
            let max_level = final_config
                .iter()
                .map(|(s, _)| s.level())
                .max()
                .unwrap_or(0);
            BackupOutcome {
                max_level,
                silent_time: out.time,
                leader_levels,
            }
        };
        let built = run_backup(n, seed);
        assert_eq!(legacy, built, "n={n} seed={seed}");
    }
}

#[test]
fn run_exact_count_matches_legacy_agent_sim_byte_for_byte() {
    let (n, seed) = (60usize, 13u64);
    let legacy: CountOutcome = {
        let mut sim = AgentSim::new(ExactLeaderCount::default(), n, seed);
        sim.set_state(
            0,
            CountState::Leader {
                count: 1,
                run: 0,
                done: false,
            },
        );
        let out = sim.run_until_converged(
            |states| {
                states
                    .iter()
                    .any(|s| matches!(s, CountState::Leader { done: true, .. }))
            },
            1e7,
        );
        let count = sim
            .states()
            .iter()
            .find_map(|s| match s {
                CountState::Leader { count, .. } => Some(*count),
                _ => None,
            })
            .unwrap_or(0);
        CountOutcome {
            count,
            time: out.time,
            terminated: out.converged,
        }
    };
    let built = run_exact_count(n, seed, 1e7);
    assert_eq!(legacy, built);
}

#[test]
fn run_nonuniform_majority_matches_legacy_seeded_config_sim_byte_for_byte() {
    for (n, ones, seed) in [(300usize, 190usize, 5u64), (300, 110, 6)] {
        let legacy = {
            let protocol = NonuniformMajority::for_population(n);
            let k = protocol.stage_factor * protocol.log_n;
            let seeded = SeededNonuniformMajority {
                protocol,
                ones: ones as u64,
            };
            let mut sim = ConfigSim::from_seeded(seeded, n as u64, seed);
            let out = sim.run_until(
                |c| {
                    let mut display = None;
                    c.iter().all(|(s, _)| {
                        s.stage >= k && *display.get_or_insert(s.inner.display) == s.inner.display
                    })
                },
                n as u64,
                1e6,
            );
            let winner = if out.converged {
                sim.config_view()
                    .iter()
                    .next()
                    .map(|(s, _)| s.inner.display)
            } else {
                None
            };
            (winner, out.time, out.converged)
        };
        let built = run_nonuniform_majority(n, ones, seed, 1e6);
        assert_eq!(
            legacy,
            (built.winner, built.time, built.converged),
            "n={n} ones={ones} seed={seed}"
        );
    }
}
