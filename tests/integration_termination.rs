//! Integration tests for the Theorem 4.1 side: producibility, density,
//! doomed terminators, and the leader escape hatch.

use uniform_sizeest::baselines::naive_terminating::{fixed_signal_time, geometric_signal_time};
use uniform_sizeest::protocols::leader::run_terminating_agentwise;
use uniform_sizeest::termination::density::{density, even_dense_config, leader_config};
use uniform_sizeest::termination::experiment::{
    counter_dense_config, counter_protocol, signal_time, verify_density_lemma, COUNTER_T, COUNTER_X,
};
use uniform_sizeest::termination::producible::{producible_closure, termination_is_producible};

#[test]
fn theorem_4_1_flat_signal_times() {
    // All three doomed protocols: 100x population, signal time ~flat.
    let rel = counter_protocol(8);
    let t1 = signal_time(
        &rel,
        counter_dense_config(2_000),
        |&s| s == COUNTER_T,
        1e4,
        1,
    )
    .unwrap();
    let t2 = signal_time(
        &rel,
        counter_dense_config(200_000),
        |&s| s == COUNTER_T,
        1e4,
        2,
    )
    .unwrap();
    assert!(t2 / t1 < 3.0, "counter: {t1} -> {t2}");

    let f1 = fixed_signal_time(2_000, 40, 3);
    let f2 = fixed_signal_time(200_000, 40, 4);
    assert!(f2 / f1 < 2.0, "fixed: {f1} -> {f2}");

    let g1 = geometric_signal_time(2_000, 10, 5);
    let g2 = geometric_signal_time(200_000, 10, 6);
    assert!(g2 < 20.0 && g1 < 20.0, "geometric: {g1}, {g2}");
}

#[test]
fn lemma_4_2_delta_does_not_collapse() {
    let rel = counter_protocol(5);
    let mut fractions = Vec::new();
    for (i, n) in [5_000u64, 50_000, 500_000].into_iter().enumerate() {
        let report = verify_density_lemma(&rel, counter_dense_config(n), 1.0, None, 4.0, i as u64);
        fractions.push(report.min_fraction());
    }
    let min = fractions.iter().cloned().fold(1.0f64, f64::min);
    assert!(min > 1e-3, "delta collapsed: {fractions:?}");
    // Shape: roughly constant across two orders of magnitude.
    assert!(
        fractions[2] > fractions[0] / 5.0,
        "delta shrinking with n: {fractions:?}"
    );
}

#[test]
fn producibility_is_the_right_certificate() {
    // The terminated state is producible from the dense start but NOT from
    // a start missing the fuel state — and the signal-time measurements
    // agree with the certificate.
    let rel = counter_protocol(6);
    assert!(termination_is_producible(&rel, [0u16, COUNTER_X], 1.0, |&s| s == COUNTER_T).is_some());
    assert!(termination_is_producible(&rel, [0u16], 1.0, |&s| s == COUNTER_T).is_none());
    let no_fuel = even_dense_config(&[0u16], 10_000);
    assert_eq!(
        signal_time(&rel, no_fuel, |&s| s == COUNTER_T, 100.0, 7),
        None
    );
}

#[test]
fn closure_levels_are_monotone_in_rho() {
    let rel = counter_protocol(6);
    let loose = producible_closure(&rel, [0u16, COUNTER_X], 0.5, None);
    let tight = producible_closure(&rel, [0u16, COUNTER_X], 1.0, None);
    // Every 1.0-producible state is 0.5-producible.
    for s in tight.final_set() {
        assert!(loose.final_set().contains(s));
    }
}

#[test]
fn leader_configs_are_not_dense_but_dense_configs_are() {
    let dense = counter_dense_config(10_000);
    assert!(density(&dense) >= 0.49);
    let with_leader = leader_config(COUNTER_T, &[0u16, COUNTER_X], 10_000);
    assert!(density(&with_leader) < 0.001);
}

#[test]
fn leader_termination_waits_while_dense_signals_cannot() {
    // The paper's dichotomy: the leader's clock fires at Θ(logSize2²) =
    // Θ(log² n) parallel time — with a deterministic lower bound from the
    // Lemma 3.8 band — while any dense uniform signal fires at O(1).
    // (Raw firing times across two n are NOT comparable trial-to-trial:
    // the threshold is 2000·logSize2² and logSize2 is a random draw whose
    // bands for nearby n overlap.)
    let n = 400u64;
    // Agent engine: protocol property, engine-independent (and the
    // faster engine at this size).
    let out = run_terminating_agentwise(n as usize, 900, 1e8);
    assert!(out.terminated);
    // Minimum possible threshold: logSize2 ≥ log n − log ln n (+2 offset
    // means ≥ that even without slack); leader needs threshold
    // interactions ≈ threshold/2 parallel time.
    let ls_min = (n as f64).log2() - (n as f64).ln().log2();
    let t_min = 2000.0 * ls_min * ls_min / 2.0;
    assert!(
        out.termination_time >= 0.8 * t_min,
        "leader fired at {} — below the clock's lower bound {t_min}",
        out.termination_time
    );
    // Dense contrast: the doomed counter signals three orders of magnitude
    // earlier at the same n.
    let rel = counter_protocol(8);
    let dense = signal_time(&rel, counter_dense_config(n), |&s| s == COUNTER_T, 1e4, 902).unwrap();
    assert!(
        out.termination_time > 100.0 * dense,
        "leader {} vs dense {dense}",
        out.termination_time
    );
}
