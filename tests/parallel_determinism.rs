//! Parallel batch fill determinism: the batched engine's fixed-partition
//! parallel fill must be **byte-for-byte identical at every thread
//! count**, and resumable mid-run like any other engine state.
//!
//! The contract under test (see `pp_engine::parallel`):
//!
//! 1. **Thread-count independence.** A run with `.threads(1)`,
//!    `.threads(2)`, and `.threads(8)` realizes the same trajectory —
//!    partition, per-subrange RNG streams, and merge order are pure
//!    functions of the batch, never of the worker count. Checked by
//!    proptest over random multi-row protocols (deterministic *and*
//!    finite-random outcome laws), sizes, and seeds.
//! 2. **Serial is untouched.** `.threads(0)` (explicitly serial) is
//!    byte-identical to a build that never mentions threads: the knob
//!    must not perturb the classic fill path.
//! 3. **Crash recovery.** A checkpoint → kill → resume drill under
//!    4 fill threads continues byte-for-byte — and resuming under a
//!    *different* worker count (8) still matches, because enabled-ness,
//!    not count, is the trajectory bit.
//! 4. **Same process, same law.** The parallel discipline draws a
//!    different trajectory family than the serial fill, but from the
//!    same distribution: a three-state epidemic's mean completion time
//!    must agree between disciplines.

use proptest::prelude::*;
use rand::Rng;
use uniform_sizeest::engine::count_sim::{CountProtocol, Outcomes};
use uniform_sizeest::engine::rng::SimRng;
use uniform_sizeest::engine::{Counter, EngineMode, Metrics, Simulation};

/// One per-pair outcome law of a randomly generated protocol.
#[derive(Debug, Clone)]
enum Law {
    /// `(rec, sen) -> (rec', sen')`, always.
    Det(u8, u8),
    /// `(rec, sen) -> (a_r, a_s)` with probability `p`, else `(b_r, b_s)`.
    Coin(u8, u8, u8, u8, f64),
}

/// A protocol over states `0..k` whose transition law is a random table —
/// the adversarial shape for the fill: many reactive rows, a mix of
/// deterministic and finite-random pairs, nothing the engine can
/// special-case.
#[derive(Debug, Clone)]
struct TableProtocol {
    k: u8,
    laws: Vec<Law>,
}

impl TableProtocol {
    fn law(&self, rec: u8, sen: u8) -> &Law {
        &self.laws[rec as usize * self.k as usize + sen as usize]
    }
}

impl CountProtocol for TableProtocol {
    type State = u8;

    fn transition(&self, rec: u8, sen: u8, rng: &mut SimRng) -> (u8, u8) {
        match *self.law(rec, sen) {
            Law::Det(r, s) => (r, s),
            Law::Coin(ar, as_, br, bs, p) => {
                if rng.gen_bool(p) {
                    (ar, as_)
                } else {
                    (br, bs)
                }
            }
        }
    }

    fn outcomes(&self, rec: u8, sen: u8) -> Option<Outcomes<u8>> {
        Some(match *self.law(rec, sen) {
            Law::Det(r, s) => Outcomes::Deterministic(r, s),
            Law::Coin(ar, as_, br, bs, p) => {
                Outcomes::Random(vec![(ar, as_, p), (br, bs, 1.0 - p)])
            }
        })
    }
}

/// A random `TableProtocol` over `k` states, derived from `seed`: each
/// pair gets either a deterministic outcome or a two-outcome coin law.
/// Outcome states stay in `0..k` so the occupied support is bounded and
/// batching stays profitable.
fn random_protocol(k: u8, seed: u64) -> TableProtocol {
    let mut rng = uniform_sizeest::engine::rng::rng_from_seed(seed);
    let laws = (0..(k as usize).pow(2))
        .map(|_| {
            if rng.gen_bool(0.5) {
                Law::Det(rng.gen_range(0..k), rng.gen_range(0..k))
            } else {
                Law::Coin(
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                    rng.gen_range(0.05..0.95),
                )
            }
        })
        .collect();
    TableProtocol { k, laws }
}

/// An initial configuration spreading `n` agents over all `k` states
/// (every row occupied, so the fill has the full table to partition).
fn spread_init(k: u8, n: u64) -> Vec<(u8, u64)> {
    let k64 = k as u64;
    (0..k)
        .map(|s| {
            let share = n / k64 + u64::from((s as u64) < n % k64);
            (s, share)
        })
        .filter(|&(_, c)| c > 0)
        .collect()
}

fn build_sim(
    p: &TableProtocol,
    n: u64,
    seed: u64,
    threads: Option<u64>,
) -> Simulation<'static, u8> {
    let b = Simulation::count_builder(p.clone())
        .config(spread_init(p.k, n))
        .seed(seed)
        .mode(EngineMode::Batched);
    match threads {
        Some(k) => b.threads(k),
        None => b,
    }
    .build()
}

/// Drives all simulations forward in lock-step chunks, asserting decoded
/// configuration, interaction clock, and exact time bits agree before
/// every chunk — sensitive to a single diverging draw.
fn assert_lockstep(sims: &mut [Simulation<u8>], chunk: u64, chunks: usize) {
    for i in 0..=chunks {
        let (first, rest) = sims.split_first_mut().unwrap();
        let mut v0 = first.view();
        v0.sort();
        for (j, sim) in rest.iter_mut().enumerate() {
            assert_eq!(
                first.interactions(),
                sim.interactions(),
                "clock diverged from sim {} at chunk {i}",
                j + 1
            );
            assert_eq!(
                first.time().to_bits(),
                sim.time().to_bits(),
                "time bits diverged from sim {} at chunk {i}",
                j + 1
            );
            let mut v = sim.view();
            v.sort();
            assert_eq!(
                v0,
                v,
                "configuration diverged from sim {} at chunk {i}",
                j + 1
            );
        }
        if i < chunks {
            for sim in sims.iter_mut() {
                sim.steps(chunk);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Contract 1: 1, 2, and 8 fill threads are byte-identical.
    #[test]
    fn thread_count_never_changes_the_trajectory(
        k in 3u8..7,
        proto_seed in any::<u64>(),
        n in 200u64..3000,
        seed in any::<u64>(),
    ) {
        let p = random_protocol(k, proto_seed);
        let mut sims = [
            build_sim(&p, n, seed, Some(1)),
            build_sim(&p, n, seed, Some(2)),
            build_sim(&p, n, seed, Some(8)),
        ];
        assert_lockstep(&mut sims, n.max(64), 6);
    }

    // Contract 2: `.threads(0)` is the classic serial fill, bit for bit.
    #[test]
    fn explicit_zero_matches_the_default_serial_build(
        k in 3u8..7,
        proto_seed in any::<u64>(),
        n in 200u64..3000,
        seed in any::<u64>(),
    ) {
        let p = random_protocol(k, proto_seed);
        let mut sims = [
            build_sim(&p, n, seed, None),
            build_sim(&p, n, seed, Some(0)),
        ];
        assert_lockstep(&mut sims, n.max(64), 6);
    }
}

/// The parallel discipline must actually engage — otherwise the proptest
/// identities above would pass vacuously. A dense random protocol at
/// `n = 10⁵` records parallel fills in the telemetry registry.
#[test]
fn parallel_fills_engage_and_are_counted() {
    let k = 5u8;
    let laws = (0..k as usize * k as usize)
        .map(|i| {
            let r = (i as u8).wrapping_mul(7) % k;
            let s = (i as u8).wrapping_mul(11).wrapping_add(3) % k;
            Law::Det(r, s)
        })
        .collect();
    let p = TableProtocol { k, laws };
    let n = 100_000;
    let m = Metrics::new();
    let mut sim = Simulation::count_builder(p)
        .config(spread_init(k, n))
        .seed(9)
        .mode(EngineMode::Batched)
        .threads(2)
        .metrics(&m)
        .build();
    sim.steps(20 * n);
    assert!(
        m.counter(Counter::ParallelFills) > 0,
        "no parallel fill ran: the determinism suite would be vacuous"
    );
    assert!(m.counter(Counter::FillSubranges) >= m.counter(Counter::ParallelFills));
    let total: u64 = sim.view().iter().map(|&(_, c)| c).sum();
    assert_eq!(total, n, "population must be conserved by parallel fills");
}

/// Contract 3: checkpoint → kill → resume under 4 fill threads continues
/// byte-for-byte; resuming under a *different* worker count (8) also
/// matches, because the trajectory depends on the discipline bit, not
/// the count.
#[test]
fn killed_parallel_run_resumes_byte_identically() {
    let k = 5u8;
    let laws = (0..k as usize * k as usize)
        .map(|i| {
            if i % 3 == 0 {
                Law::Coin(
                    (i as u8).wrapping_mul(5) % k,
                    (i as u8).wrapping_mul(3) % k,
                    (i as u8) % k,
                    (i as u8).wrapping_add(1) % k,
                    0.25,
                )
            } else {
                Law::Det(
                    (i as u8).wrapping_mul(7) % k,
                    (i as u8).wrapping_mul(11) % k,
                )
            }
        })
        .collect();
    let p = TableProtocol { k, laws };
    let n = 5_000u64;
    let seed = 17;
    let kill_at = 12 * n;
    let extra = 8 * n;

    let dir = std::env::temp_dir().join("pp-parallel-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("kill-{}.ppsnap", std::process::id()));

    // The uninterrupted reference, 4 fill threads throughout. It follows
    // the victim's step schedule: a batch truncates exactly at each
    // `steps` target (that is how checkpoints land on exact interaction
    // counts), so the trajectory is a function of the budget sequence.
    let mut reference = Simulation::count_builder(p.clone())
        .config(spread_init(k, n))
        .seed(seed)
        .mode(EngineMode::Batched)
        .threads(4)
        .build();
    reference.steps(kill_at);
    reference.steps(extra);

    // The victim: checkpoint at the kill point, then drop — the
    // in-process SIGKILL; only the snapshot file survives.
    let mut victim = Simulation::count_builder(p.clone())
        .config(spread_init(k, n))
        .seed(seed)
        .mode(EngineMode::Batched)
        .threads(4)
        .checkpoint_to(&path)
        .build();
    victim.steps(kill_at);
    victim.snapshot_to(&path).unwrap();
    drop(victim);

    // Resume under a *different* worker count: 8 must match 4.
    let mut revived = Simulation::count_builder(p)
        .threads(8)
        .resume(&path)
        .unwrap();
    revived.steps(extra);

    assert_eq!(revived.interactions(), reference.interactions());
    assert_eq!(revived.time().to_bits(), reference.time().to_bits());
    let mut va = revived.view();
    let mut vb = reference.view();
    va.sort();
    vb.sort();
    assert_eq!(va, vb);
    let _ = std::fs::remove_file(&path);
}

/// A three-state max-epidemic: receiver adopts the larger value. Two
/// reactive rows (`0` catches `1`/`2`, `1` catches `2`), so the parallel
/// fill engages; completion is "everyone holds 2".
#[derive(Debug, Clone)]
struct MaxThree;

impl CountProtocol for MaxThree {
    type State = u8;

    fn transition(&self, rec: u8, sen: u8, _rng: &mut SimRng) -> (u8, u8) {
        (rec.max(sen), sen)
    }

    fn outcomes(&self, rec: u8, sen: u8) -> Option<Outcomes<u8>> {
        Some(Outcomes::Deterministic(rec.max(sen), sen))
    }

    fn is_deterministic(&self) -> bool {
        true
    }
}

/// Contract 4: serial and parallel fills draw different trajectories from
/// the **same law**. Mean completion time of the three-state epidemic
/// (≈ `2 ln n` + lower-order) must agree between disciplines across
/// seeds; a bias in the parallel allocation (wrong hypergeometric
/// marginals, a dropped row, a double-counted rest pool) would shift it.
#[test]
fn parallel_discipline_preserves_the_completion_time_law() {
    let n = 20_000u64;
    let trials = 24;
    let complete = |view: &[(u8, u64)]| view.iter().all(|&(s, c)| s == 2 || c == 0);
    let mean_time = |threads: u64| -> f64 {
        let mut sum = 0.0;
        for t in 0..trials {
            let (out, _sim) = Simulation::count_builder(MaxThree)
                .config([(0, n - 2), (1, 1), (2, 1)])
                .seed(1000 + t)
                .mode(EngineMode::Batched)
                .threads(threads)
                .max_time(200.0)
                .until(complete)
                .run();
            assert!(out.converged, "epidemic must complete (threads={threads})");
            sum += out.time;
        }
        sum / trials as f64
    };
    let serial = mean_time(0);
    let parallel = mean_time(4);
    let rel = (serial - parallel).abs() / serial;
    assert!(
        rel < 0.10,
        "mean completion time diverged between disciplines: \
         serial {serial:.3} vs parallel {parallel:.3} ({:.2}% relative)",
        rel * 100.0
    );
}
