//! Property-based tests of the main protocol's dynamic invariants: run
//! arbitrary prefixes of real executions and check that the state machine
//! never leaves its legal envelope.

use proptest::prelude::*;
use uniform_sizeest::engine::AgentSim;
use uniform_sizeest::protocols::log_size::LogSizeEstimation;
use uniform_sizeest::protocols::state::{MainState, Role};

/// Checks every structural invariant of a population snapshot.
fn check_invariants(states: &[MainState], epoch_mult: u64) -> Result<(), String> {
    for (i, s) in states.iter().enumerate() {
        // logSize2 includes the +2 offset once a role-A agent sampled it.
        if s.role != Role::X && s.log_size2 < 1 {
            return Err(format!("agent {i}: logSize2 below 1"));
        }
        // Epoch never exceeds the target implied by its own logSize2
        // (agents stop at 5·logSize2)... except transiently epoch == target.
        if s.epoch > epoch_mult * s.log_size2 {
            return Err(format!(
                "agent {i}: epoch {} beyond target {}",
                s.epoch,
                epoch_mult * s.log_size2
            ));
        }
        // protocol_done implies the target was reached (A agents) or the
        // deliveries completed (S agents) — both mean epoch == target.
        if s.protocol_done && s.epoch < epoch_mult * s.log_size2 {
            return Err(format!("agent {i}: done before target"));
        }
        // An output implies done.
        if s.output.is_some() && !s.protocol_done {
            return Err(format!("agent {i}: output without done"));
        }
        // Role X agents never advance.
        if s.role == Role::X && (s.epoch > 0 || s.time > 0 || s.sum > 0) {
            return Err(format!("agent {i}: X agent advanced"));
        }
        // S agents never run the interaction clock.
        if s.role == Role::S && s.time > 0 {
            return Err(format!("agent {i}: S agent ticked its clock"));
        }
        // gr is a positive geometric sample.
        if s.gr < 1 {
            return Err(format!("agent {i}: gr below 1"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invariants_hold_along_random_executions(
        n in 10usize..150,
        seed in any::<u64>(),
        bursts in 1usize..12,
    ) {
        let protocol = LogSizeEstimation::paper();
        let mut sim = AgentSim::new(protocol, n, seed);
        for _ in 0..bursts {
            sim.run_for_time(50.0);
            if let Err(e) = check_invariants(sim.states(), protocol.epoch_multiplier) {
                prop_assert!(false, "invariant violated at t={}: {e}", sim.time());
            }
        }
    }

    #[test]
    fn roles_are_stable_once_assigned(n in 10usize..100, seed in any::<u64>()) {
        let mut sim = AgentSim::new(LogSizeEstimation::paper(), n, seed);
        sim.run_for_time(30.0);
        let roles: Vec<Role> = sim.states().iter().map(|s| s.role).collect();
        sim.run_for_time(100.0);
        for (i, s) in sim.states().iter().enumerate() {
            if roles[i] != Role::X {
                prop_assert_eq!(s.role, roles[i], "agent {} changed role", i);
            }
        }
    }

    #[test]
    fn logsize2_is_monotone_per_agent(n in 10usize..100, seed in any::<u64>()) {
        let mut sim = AgentSim::new(LogSizeEstimation::paper(), n, seed);
        let mut prev: Vec<u64> = sim.states().iter().map(|s| s.log_size2).collect();
        for _ in 0..8 {
            sim.run_for_time(20.0);
            for (i, s) in sim.states().iter().enumerate() {
                prop_assert!(
                    s.log_size2 >= prev[i],
                    "agent {} logSize2 decreased {} -> {}",
                    i, prev[i], s.log_size2
                );
                prev[i] = s.log_size2;
            }
        }
    }

    #[test]
    fn population_wide_max_logsize2_never_decreases(n in 20usize..120, seed in any::<u64>()) {
        let mut sim = AgentSim::new(LogSizeEstimation::paper(), n, seed);
        let mut prev_max = 0;
        for _ in 0..10 {
            sim.run_for_time(15.0);
            let max = sim.states().iter().map(|s| s.log_size2).max().unwrap();
            prop_assert!(max >= prev_max);
            prev_max = max;
        }
    }
}

#[test]
fn s_epoch_tracks_number_of_summands() {
    // White-box invariant: an S agent's sum is a sum of exactly `epoch`
    // geometric maxima, each ≥ 1, so epoch ≤ sum (once epoch > 0) unless a
    // restart zeroed both.
    let mut sim = AgentSim::new(LogSizeEstimation::paper(), 120, 77);
    for _ in 0..40 {
        sim.run_for_time(25.0);
        for (i, s) in sim.states().iter().enumerate() {
            if s.role == Role::S && s.epoch > 0 {
                assert!(
                    s.sum >= s.epoch,
                    "agent {i}: sum {} < epoch {} (each summand is ≥ 1)",
                    s.sum,
                    s.epoch
                );
            }
        }
    }
}
