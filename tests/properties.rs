//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace.

use proptest::prelude::*;
use uniform_sizeest::analysis::stats::{quantile, Summary};
use uniform_sizeest::engine::count_sim::CountConfiguration;
use uniform_sizeest::engine::rng::{derive_seed, geometric, geometric_half, rng_from_seed};
use uniform_sizeest::engine::scheduler::PairScheduler;
use uniform_sizeest::termination::producible::producible_closure;
use uniform_sizeest::termination::relation::{Transition, TransitionRelation};

proptest! {
    #[test]
    fn derived_seeds_never_collide_with_base_stream(base in any::<u64>(), a in 0u64..512, b in 0u64..512) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(base, a), derive_seed(base, b));
    }

    #[test]
    fn scheduler_pairs_always_distinct_and_in_range(n in 2usize..200, seed in any::<u64>()) {
        let sched = PairScheduler::new(n);
        let mut rng = rng_from_seed(seed);
        for _ in 0..50 {
            let p = sched.next_pair(&mut rng);
            prop_assert!(p.receiver < n);
            prop_assert!(p.sender < n);
            prop_assert_ne!(p.receiver, p.sender);
        }
    }

    #[test]
    fn geometric_always_at_least_one(seed in any::<u64>(), p in 0.01f64..1.0) {
        let mut rng = rng_from_seed(seed);
        prop_assert!(geometric_half(&mut rng) >= 1);
        prop_assert!(geometric(p, &mut rng) >= 1);
    }

    #[test]
    fn count_configuration_conserves_population(
        counts in proptest::collection::vec(1u64..100, 1..10),
        seed in any::<u64>(),
    ) {
        let pairs: Vec<(u32, u64)> = counts.iter().enumerate().map(|(i, &c)| (i as u32, c)).collect();
        let total: u64 = counts.iter().sum();
        let config = CountConfiguration::from_pairs(pairs);
        prop_assert_eq!(config.population_size(), total);
        if total >= 2 {
            // Run a copy-the-sender protocol; population must be conserved.
            struct Copycat;
            impl uniform_sizeest::engine::count_sim::CountProtocol for Copycat {
                type State = u32;
                fn transition(&self, _r: u32, s: u32, _rng: &mut uniform_sizeest::engine::rng::SimRng) -> (u32, u32) {
                    (s, s)
                }
            }
            let mut sim = uniform_sizeest::engine::count_sim::CountSim::new(Copycat, config, seed);
            sim.steps(200);
            prop_assert_eq!(sim.config().population_size(), total);
        }
    }

    #[test]
    fn density_flag_matches_min_fraction(
        counts in proptest::collection::vec(1u64..1000, 1..8),
        alpha in 0.0f64..1.0,
    ) {
        let pairs: Vec<(u32, u64)> = counts.iter().enumerate().map(|(i, &c)| (i as u32, c)).collect();
        let config = CountConfiguration::from_pairs(pairs);
        let n = config.population_size() as f64;
        let min_frac = counts.iter().map(|&c| c as f64 / n).fold(1.0f64, f64::min);
        prop_assert_eq!(config.is_dense(alpha), min_frac >= alpha);
    }

    #[test]
    fn summary_bounds_are_consistent(data in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let s = Summary::of(&data);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
        prop_assert_eq!(s.count, data.len());
    }

    #[test]
    fn quantiles_are_monotone(data in proptest::collection::vec(-1e3f64..1e3, 1..40), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&data, lo) <= quantile(&data, hi) + 1e-9);
    }

    #[test]
    fn closure_levels_are_monotone(limit in 2u16..20) {
        let rel = uniform_sizeest::termination::experiment::counter_protocol(limit);
        let closure = producible_closure(&rel, [0u16, 1000u16], 1.0, None);
        for w in closure.levels.windows(2) {
            prop_assert!(w[0].is_subset(&w[1]), "closure must grow monotonically");
        }
        // Fixpoint contains the initial set.
        prop_assert!(closure.final_set().contains(&0));
        prop_assert!(closure.final_set().contains(&1000));
    }

    #[test]
    fn transition_relation_roundtrip(states in proptest::collection::vec((0u8..20, 0u8..20, 0u8..20, 0u8..20), 1..15)) {
        // Dedup by input pair to keep rates valid (each 1.0).
        let mut seen = std::collections::BTreeSet::new();
        let transitions: Vec<Transition<u8>> = states
            .into_iter()
            .filter(|&(a, b, _, _)| seen.insert((a, b)))
            .map(|(a, b, c, d)| Transition::new(a, b, c, d))
            .collect();
        let count = transitions.len();
        let rel = TransitionRelation::new(transitions);
        prop_assert_eq!(rel.transitions().len(), count);
        prop_assert_eq!(rel.min_rate(), 1.0);
    }

    #[test]
    fn max_geometric_sampler_within_sane_range(n in 1u64..1_000_000, seed in any::<u64>()) {
        let mut rng = rng_from_seed(seed);
        let m = uniform_sizeest::analysis::geometric::max_geometric_sample(n, &mut rng);
        prop_assert!(m >= 1);
        // Max of n geometrics essentially never exceeds 4 log n + 80.
        prop_assert!((m as f64) < 4.0 * (n as f64).log2().max(1.0) + 80.0);
    }
}

#[test]
fn protocol_estimate_is_pure_function_of_seed() {
    // Determinism across the whole stack (engine + protocol + runner).
    let a = uniform_sizeest::protocols::log_size::estimate_log_size(120, 1234, None);
    let b = uniform_sizeest::protocols::log_size::estimate_log_size(120, 1234, None);
    assert_eq!(a.output, b.output);
    assert_eq!(a.time, b.time);
    assert_eq!(a.maxima, b.maxima);
}
