//! Helpers shared by the statistical-equivalence suites
//! (`batched_equivalence.rs`, `unified_equivalence.rs`).

/// Trials per engine for KS/binomial distribution comparisons: the
/// `PP_EQ_TRIALS` environment variable if set (CI uses a reduced value),
/// else `default`. All thresholds derived from the count scale with it, so
/// the bounds stay valid at any setting. Parsed through the workspace's
/// shared env-knob helper for consistent semantics with `PP_SWEEP_TRIALS`.
#[allow(dead_code)]
pub fn eq_trials(default: u64) -> u64 {
    uniform_sizeest::engine::env::unsigned("PP_EQ_TRIALS")
        .unwrap_or(default)
        .max(10)
}

/// Two-sample Kolmogorov–Smirnov statistic `sup |F₁ - F₂|`.
#[allow(dead_code)]
pub fn ks_statistic(a: &mut [f64], b: &mut [f64]) -> f64 {
    a.sort_by(|x, y| x.partial_cmp(y).unwrap());
    b.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let (mut i, mut j, mut d) = (0usize, 0usize, 0f64);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let gap = (i as f64 / a.len() as f64 - j as f64 / b.len() as f64).abs();
        d = d.max(gap);
    }
    d
}

/// KS rejection threshold at significance α = 0.001 for samples of sizes
/// `m` and `n`: `c(α)·√((m+n)/(m·n))` with `c(0.001) ≈ 1.949`.
#[allow(dead_code)]
pub fn ks_threshold(m: usize, n: usize) -> f64 {
    1.949 * ((m + n) as f64 / (m as f64 * n as f64)).sqrt()
}
