//! Interner-GC equivalence: collection must be invisible to every
//! observable of a run.
//!
//! Two layers of checks:
//!
//! 1. **Sweep-output byte identity.** The paper's headline measurements
//!    (`Log-Size-Estimation`, `Leader-Terminating`) run through the sweep
//!    orchestrator twice — once with interner GC forced off (`PP_GC=off`)
//!    and once with it on — and the emitted summary/per-trial CSV bytes
//!    must match exactly. GC preserves the engine's slot layout and
//!    relative id order and consumes no randomness, so the trajectories
//!    (not just the laws) coincide.
//! 2. **Eviction invariance under random configurations.** A property
//!    suite builds arbitrary interned configurations, litters the table
//!    with dead entries, forces a collection, and asserts the decoded
//!    `(state, count)` multiset — and the population — survive
//!    eviction + compaction unchanged.

use std::sync::Mutex;

use proptest::prelude::*;
use uniform_sizeest::engine::batch::ConfigSim;
use uniform_sizeest::engine::interned::Interned;
use uniform_sizeest::engine::rng::SimRng;
use uniform_sizeest::engine::{EngineMode, Protocol, Simulation};
use uniform_sizeest::protocols::leader::{LeaderState, LeaderTerminating};
use uniform_sizeest::protocols::log_size::{estimate_counted, LogSizeEstimation};
use uniform_sizeest::sweep::{emit, run_sweep, SweepExperiment, SweepSpec};

/// Reduced-constants variants of the paper protocols: the byte-identity
/// claim is about trajectories, not estimate quality, and the short
/// clocks cut each trial by ~25x.
fn short_logsize() -> LogSizeEstimation {
    LogSizeEstimation::with_constants(20, 3, 2)
}

fn short_leader() -> LeaderTerminating {
    LeaderTerminating {
        fast: short_logsize(),
        termination_multiplier: 200,
    }
}

/// The headline protocols as inline sweep experiments, both on the
/// count-engine default the GC unlocked.
fn experiments() -> Vec<SweepExperiment> {
    vec![
        SweepExperiment::new("logsize", &["time", "interactions", "output"], |ctx| {
            let out = estimate_counted(short_logsize(), ctx.n as usize, ctx.seed, None);
            assert!(out.converged);
            vec![
                out.time,
                out.maxima.sum as f64,
                out.output.map(|k| k as f64).unwrap_or(f64::NAN),
            ]
        }),
        SweepExperiment::new("leader", &["term_time", "frozen_time", "output"], |ctx| {
            let mut sim = Simulation::builder(short_leader())
                .size(ctx.n)
                .seed(ctx.seed)
                .mode(EngineMode::Auto)
                .init_planted([(LeaderState::leader(), 1)])
                .build();
            let fired = sim.run_until(|view| view.iter().any(|(s, _)| s.terminated), 1e8);
            assert!(fired.converged, "short leader clock must fire");
            let frozen = sim.run_until(|view| view.iter().all(|(s, _)| s.terminated), 1e8);
            let output = sim
                .view()
                .iter()
                .filter_map(|(s, _)| s.main.output)
                .next()
                .map(|k| k as f64)
                .unwrap_or(f64::NAN);
            vec![fired.time, frozen.time, output]
        }),
    ]
}

/// Serializes the two tests in this binary: the byte-identity test
/// mutates `PP_GC` while every `ConfigSim` construction — including the
/// property test's — reads it, and concurrent `setenv`/`getenv` is
/// undefined behavior on glibc. (Cargo runs test *binaries* sequentially,
/// so cross-binary constructions cannot overlap the mutation.)
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn sweep_output_is_byte_identical_with_gc_on_and_off() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = || {
        let mut spec = SweepSpec::new("gc_eq", vec![100, 200], 2);
        spec.master_seed = 0x6C01;
        spec.threads = 1;
        let report = run_sweep(&spec, &experiments()).expect("sweep runs");
        (emit::summary_csv(&report), emit::per_trial_csv(&report))
    };
    // Forced off, then forced on: the `PP_GC` knob is read at simulator
    // construction, so it must be set before each sweep starts.
    std::env::set_var("PP_GC", "off");
    let off = run();
    std::env::set_var("PP_GC", "on");
    let on = run();
    std::env::remove_var("PP_GC");
    assert_eq!(
        off, on,
        "interner GC changed the emitted sweep bytes — collection is not trajectory-neutral"
    );
}

/// Record state with enough structure to exercise hashing and ordering.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Rec {
    value: u64,
    flag: bool,
}

/// Receiver-increments churner over [`Rec`].
#[derive(Clone)]
struct Churn;

impl Protocol for Churn {
    type State = Rec;

    fn initial_state(&self) -> Rec {
        Rec {
            value: 0,
            flag: false,
        }
    }

    fn interact(&self, rec: &mut Rec, sen: &mut Rec, _rng: &mut SimRng) {
        rec.value += 1;
        rec.flag = !sen.flag;
    }
}

fn sorted_view(view: Vec<(Rec, u64)>) -> Vec<(u64, bool, u64)> {
    let mut flat: Vec<(u64, bool, u64)> = view
        .into_iter()
        .map(|(s, c)| (s.value, s.flag, c))
        .collect();
    flat.sort_unstable();
    flat
}

proptest! {
    #[test]
    fn eviction_and_compaction_preserve_the_decoded_multiset(
        counts in proptest::collection::vec((0u64..50, 1u64..40), 2..12),
        dead in proptest::collection::vec(1000u64..2000, 0..30),
        steps in 0u64..3000,
        seed in any::<u64>(),
    ) {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let interned = Interned::new(Churn);
        let handle = interned.handle();
        // Random initial configuration (duplicate values collapse).
        let mut pairs: Vec<(Rec, u64)> = Vec::new();
        for &(value, count) in &counts {
            for flag in [false, true] {
                let state = Rec { value, flag };
                match pairs.iter_mut().find(|(s, _)| *s == state) {
                    Some((_, c)) => *c += count,
                    None => pairs.push((state, count)),
                }
            }
        }
        // Litter the table with states no agent holds.
        for &value in &dead {
            interned.intern_state(Rec { value, flag: false });
        }
        let config = interned.config_from_pairs(pairs);
        let population = config.population_size();
        prop_assume!(population >= 2);
        let mut sim = ConfigSim::sequential(interned, config, seed);
        sim.steps(steps); // churn mints more dead entries
        let before = sorted_view(handle.decode(&sim.config_view()));
        let table_before = handle.discovered();
        let generation = handle.generation();

        prop_assert!(sim.collect_now(), "interned adapter must collect");

        prop_assert_eq!(handle.generation(), generation + 1);
        let after = sorted_view(handle.decode(&sim.config_view()));
        prop_assert_eq!(&before, &after, "collection changed the decoded multiset");
        prop_assert_eq!(sim.config_view().population_size(), population);
        prop_assert!(handle.discovered() <= table_before);
        // Every live state must still decode through the handle.
        for &(value, flag, count) in &after {
            let state = Rec { value, flag };
            prop_assert_eq!(handle.count_of(&sim.config_view(), &state), count);
        }
        // The run continues seamlessly on the compacted table.
        sim.steps(200);
        prop_assert_eq!(sim.config_view().population_size(), population);
    }
}
