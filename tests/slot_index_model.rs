//! Model check for the open-addressed slot index.
//!
//! [`SlotIndex`] replaced the count engines' `BTreeMap` state → slot maps
//! on the interaction hot path. This suite drives it through the exact
//! life cycle those engines impose — insert on discovery, remove on
//! release with LIFO free-slot recycling, and the wholesale
//! renumber-and-rebuild of a GC compaction — against a `BTreeMap`
//! reference model, under a deliberately collision-heavy hash (a handful
//! of hash classes, so linear-probe chains and backward-shift deletion
//! repair are exercised constantly, not just on rare collisions).

use std::collections::BTreeMap;

use proptest::prelude::*;
use uniform_sizeest::engine::slot_index::{fnv_hash, SlotIndex};

/// Collision-heavy hash: values collapse onto 7 hash classes.
fn h(value: u64) -> u64 {
    fnv_hash(&(value % 7))
}

#[derive(Debug, Clone)]
enum Op {
    /// Intern `value` if unseen, recycling the most recently freed slot.
    Insert(u64),
    /// Release `value`'s slot (no-op if absent).
    Remove(u64),
    /// Look `value` up and compare against the model.
    Get(u64),
    /// GC compaction: renumber live slots to `0..k` in slot order and
    /// rebuild the index from scratch.
    Compact,
}

/// Decodes a raw `(kind, value)` sample into an operation, weighted
/// 4 : 3 : 3 : 1 insert/remove/get/compact. A small key space keeps
/// hits, misses, and re-inserts all frequent.
fn decode_op((kind, value): (u8, u64)) -> Op {
    match kind {
        0..=3 => Op::Insert(value),
        4..=6 => Op::Remove(value),
        7..=9 => Op::Get(value),
        _ => Op::Compact,
    }
}

proptest! {
    #[test]
    fn slot_index_matches_a_btreemap_model(
        raw_ops in proptest::collection::vec((0u8..11, 0u64..40), 1..200)
    ) {
        let ops = raw_ops.into_iter().map(decode_op);
        let mut index = SlotIndex::new();
        // slot → value (the caller-owned state array the index probes into).
        let mut store: Vec<Option<u64>> = Vec::new();
        let mut free: Vec<u32> = Vec::new();
        // value → slot: the reference model.
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(value) => {
                    if model.contains_key(&value) {
                        continue;
                    }
                    let slot = match free.pop() {
                        Some(slot) => {
                            store[slot as usize] = Some(value);
                            slot
                        }
                        None => {
                            store.push(Some(value));
                            u32::try_from(store.len() - 1).unwrap()
                        }
                    };
                    index.insert(h(value), slot, |s| h(store[s as usize].unwrap()));
                    model.insert(value, slot);
                }
                Op::Remove(value) => {
                    let Some(slot) = model.remove(&value) else {
                        continue;
                    };
                    prop_assert!(
                        index.remove(h(value), slot, |s| h(store[s as usize].unwrap())),
                        "remove({value}) lost a live entry"
                    );
                    store[slot as usize] = None;
                    free.push(slot);
                }
                Op::Get(value) => {
                    let got = index.get(h(value), |s| store[s as usize] == Some(value));
                    prop_assert_eq!(got, model.get(&value).copied());
                }
                Op::Compact => {
                    // Survivors keep their relative slot order and pack
                    // into 0..k — the contract of a GC pass.
                    let mut live: Vec<(u32, u64)> = model
                        .iter()
                        .map(|(&value, &slot)| (slot, value))
                        .collect();
                    live.sort_unstable();
                    store = live.iter().map(|&(_, value)| Some(value)).collect();
                    free.clear();
                    model = live
                        .iter()
                        .enumerate()
                        .map(|(rank, &(_, value))| (value, u32::try_from(rank).unwrap()))
                        .collect();
                    index.rebuild(
                        0..u32::try_from(store.len()).unwrap(),
                        |s| h(store[s as usize].unwrap()),
                    );
                }
            }
            prop_assert_eq!(index.len(), model.len());
        }
        // Final sweep: every key in the space agrees with the model.
        for value in 0..40 {
            let got = index.get(h(value), |s| store[s as usize] == Some(value));
            prop_assert_eq!(got, model.get(&value).copied(), "final sweep at {}", value);
        }
    }
}
