//! Cross-crate integration tests: the full protocol stack end to end.
//!
//! The Log-Size-Estimation runs here pin the agent engine
//! (`estimate_agentwise`): these tests check paper-level protocol
//! properties, which are engine-independent — `tests/unified_equivalence.rs`
//! holds the engines to the same law and `tests/gc_equivalence.rs` holds
//! the default count engine's GC to trajectory neutrality — and the
//! per-agent array is the faster engine at these population sizes.

use uniform_sizeest::analysis;
use uniform_sizeest::baselines::alistarh::weak_estimate;
use uniform_sizeest::protocols::log_size::{estimate_agentwise, LogSizeEstimation};
use uniform_sizeest::protocols::synthetic::estimate_log_size_synthetic;
use uniform_sizeest::protocols::upper_bound::estimate_upper_bound;

#[test]
fn theorem_3_1_band_across_sizes() {
    for n in [100u64, 400, 1600] {
        let logn = (n as f64).log2();
        let mut in_band = 0;
        let trials = 5;
        for seed in 0..trials {
            let out = estimate_agentwise(LogSizeEstimation::paper(), n as usize, 9000 + seed, None);
            assert!(out.converged, "n={n} seed={seed} did not converge");
            let k = out.output.unwrap() as f64;
            if (k - logn).abs() <= 5.7 {
                in_band += 1;
            }
        }
        assert_eq!(in_band, trials, "n={n}: {in_band}/{trials} in the 5.7 band");
    }
}

#[test]
fn convergence_time_grows_subpolynomially() {
    // O(log^2 n): a 16x larger population should take well under 4x the
    // time (log^2 ratio for 100 -> 1600 is (10.6/6.6)^2 ≈ 2.6).
    let t_small: f64 = (0..3)
        .map(|s| estimate_agentwise(LogSizeEstimation::paper(), 100, 100 + s, None).time)
        .sum::<f64>()
        / 3.0;
    let t_large: f64 = (0..3)
        .map(|s| estimate_agentwise(LogSizeEstimation::paper(), 1600, 200 + s, None).time)
        .sum::<f64>()
        / 3.0;
    let ratio = t_large / t_small;
    assert!(ratio < 5.0, "time ratio {ratio} too steep for O(log^2 n)");
    assert!(ratio > 1.0, "larger population should not be faster");
}

#[test]
fn additive_beats_multiplicative_at_scale() {
    // The paper's core comparison: at n = 4096 the weak estimator's error
    // is typically well above the main protocol's.
    let n = 4096usize;
    let logn = (n as f64).log2(); // 12
    let trials = 6;
    let weak_mean_err: f64 = (0..trials)
        .map(|s| (weak_estimate(n, 300 + s).estimate as f64 - logn).abs())
        .sum::<f64>()
        / trials as f64;
    let main_mean_err: f64 = (0..trials)
        .map(|s| {
            estimate_agentwise(LogSizeEstimation::paper(), n, 400 + s, None)
                .error(n as u64)
                .unwrap()
                .abs()
        })
        .sum::<f64>()
        / trials as f64;
    assert!(
        main_mean_err < weak_mean_err + 2.0,
        "main {main_mean_err} vs weak {weak_mean_err}"
    );
    assert!(main_mean_err <= 5.7);
}

#[test]
fn upper_bound_variant_is_safe_and_tight() {
    let n = 200;
    let logn = (n as f64).log2();
    for seed in 0..3 {
        let out = estimate_upper_bound(n, 500 + seed, 3000.0);
        assert!(out.fast_converged);
        assert!(
            out.report as f64 >= logn,
            "seed {seed}: report {} < log n",
            out.report
        );
        assert!(
            out.report as f64 <= logn + 10.0,
            "seed {seed}: report {} too loose",
            out.report
        );
    }
}

#[test]
fn synthetic_variant_matches_randomized_band() {
    let n = 250;
    let logn = (n as f64).log2();
    let out = estimate_log_size_synthetic(n, 600, 1e8);
    assert!(out.converged);
    assert!((out.min_output as f64 - logn).abs() <= 6.7);
    assert!((out.max_output as f64 - logn).abs() <= 6.7);
}

#[test]
fn custom_constants_still_converge() {
    // Double the clock: slower but still correct.
    let protocol = LogSizeEstimation::with_constants(190, 5, 2);
    let out = estimate_agentwise(protocol, 150, 700, Some(1e7));
    assert!(out.converged);
    let err = out.error(150).unwrap().abs();
    assert!(err <= 5.7, "doubled clock broke the band: {err}");
}

#[test]
fn analysis_predictions_match_protocol_scale() {
    // The phase-clock budget must comfortably exceed measured times, and
    // both it and the paper's Corollary 3.10 budget must share the
    // Θ(log² n) shape. (The C3.10 *constant* is optimistic — it charges
    // each epoch only the epidemic time, not the full 95·logSize2 clock —
    // so measured times can exceed it at small n; see EXPERIMENTS.md.)
    for n in [100u64, 1000] {
        let budget = uniform_sizeest::protocols::log_size::default_time_budget(n);
        let t = estimate_agentwise(LogSizeEstimation::paper(), n as usize, 800 ^ n, None).time;
        assert!(
            t < budget,
            "n={n}: measured {t} exceeded the clock budget {budget}"
        );
    }
    let shape = |f: fn(u64) -> f64| f(1_000_000) / f(1_000);
    let ours = shape(uniform_sizeest::protocols::log_size::default_time_budget);
    let papers = shape(analysis::subexp::corollary_3_10_time_budget);
    assert!(
        (ours / papers - 1.0).abs() < 0.5,
        "shapes diverge: {ours} vs {papers}"
    );
}
