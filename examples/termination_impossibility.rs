//! Theorem 4.1, made visible: uniform dense protocols cannot delay a
//! termination signal beyond `O(1)` time — but a leader can.
//!
//! ```sh
//! cargo run --release --example termination_impossibility
//! ```

use uniform_sizeest::baselines::naive_terminating::fixed_signal_time;
use uniform_sizeest::protocols::leader::run_terminating;
use uniform_sizeest::termination::experiment::{
    counter_dense_config, counter_protocol, signal_time, COUNTER_T,
};
use uniform_sizeest::termination::producible::termination_is_producible;

fn main() {
    println!("== The doomed protocol: Figure 1's counter, started dense ==\n");
    println!("Agents count meetings with x up to 8, then raise a termination flag t.");
    println!("Initial configuration: n/2 in c_0, n/2 in x  (alpha = 1/2 dense).\n");

    let rel = counter_protocol(8);
    // The proof's first step: t is m-rho-producible from the dense start.
    let m = termination_is_producible(
        &rel,
        [0u16, uniform_sizeest::termination::experiment::COUNTER_X],
        1.0,
        |&s| s == COUNTER_T,
    );
    println!("producibility check: t is in Lambda^m_rho with m = {m:?} transitions");
    println!("=> Lemma 4.2 forces t to appear in bulk in O(1) time from any larger dense start:\n");

    println!("  {:>9}  {:>12}", "n", "signal time");
    for (i, n) in [1_000u64, 10_000, 100_000, 1_000_000]
        .into_iter()
        .enumerate()
    {
        let t = signal_time(
            &rel,
            counter_dense_config(n),
            |&s| s == COUNTER_T,
            1e5,
            i as u64,
        )
        .expect("terminates");
        println!("  {n:>9}  {t:>12.2}");
    }
    println!("  (flat: the signal cannot outwait the population growing 1000x)\n");

    println!("A naive fixed-threshold counter (count to 40) fares no better:");
    println!("  {:>9}  {:>12}", "n", "signal time");
    for (i, n) in [1_000u64, 100_000].into_iter().enumerate() {
        let t = fixed_signal_time(n, 40, 100 + i as u64);
        println!("  {n:>9}  {t:>12.2}");
    }

    println!("\n== The escape hatch: one initial leader (Theorem 3.13) ==\n");
    println!("A leader breaks density, and its private clock CAN wait out convergence:");
    println!("  {:>9}  {:>12}  {:>10}", "n", "term. time", "estimate");
    for (i, n) in [100usize, 400].into_iter().enumerate() {
        let out = run_terminating(n, 500 + i as u64, 1e8);
        println!(
            "  {n:>9}  {:>12.0}  {:>10}",
            out.termination_time,
            out.output
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!("  (Theta(logSize2^2) = Theta(log^2 n) firing time — thousands of units, not O(1);");
    println!("   trial-to-trial it tracks the drawn logSize2, so nearby n can swap order)");
}
