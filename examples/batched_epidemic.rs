//! Batched simulation: a ten-million-agent epidemic in milliseconds.
//!
//! ```sh
//! cargo run --release --example batched_epidemic
//! ```
//!
//! The one-way infection epidemic (`S, I -> I, I` for the receiver) is the
//! paper's basic information-spreading primitive; Lemma A.1 pins its
//! completion at `~ln n` parallel time. A sequential simulator pays for all
//! `Θ(n log n)` interactions one by one — at `n = 10⁷` that is a few
//! hundred million pair draws. The batched engine ([`ConfigSim`] picks it
//! automatically for deterministic protocols at this scale) samples `Θ(√n)`
//! interactions per hypergeometric batch and skips null-dominated phases in
//! O(1) per infection, so the same run takes milliseconds.

use std::time::Instant;

use uniform_sizeest::engine::batch::ConfigSim;
use uniform_sizeest::engine::epidemic::InfectionEpidemic;
use uniform_sizeest::engine::simulation::{count_of, EngineKind, Simulation};

fn main() {
    let n: u64 = 10_000_000;
    let seed = 42;
    println!("One-way epidemic, n = {n}, single infected source (seed {seed})...");

    let mut sim = Simulation::count_builder(InfectionEpidemic)
        .config([(false, n - 1), (true, 1)])
        .seed(seed)
        .check_every(n / 8)
        .until(move |view| count_of(view, &true) == n)
        .build();
    println!(
        "engine: {:?} (EngineMode::Auto picks batched for deterministic protocols at n ≥ {})\n",
        sim.engine_kind(),
        ConfigSim::<InfectionEpidemic>::BATCH_THRESHOLD,
    );
    assert_eq!(sim.engine_kind(), EngineKind::Batched);

    let start = Instant::now();
    let out = sim.run();
    let elapsed = start.elapsed();

    assert!(out.converged);
    println!("all {n} agents infected");
    println!(
        "parallel time:      {:.2}  (one-way epidemic scale ~2 ln n = {:.2})",
        out.time,
        2.0 * (n as f64).ln()
    );
    println!("interactions:       {}", out.interactions);
    println!("wall clock:         {:.1} ms", elapsed.as_secs_f64() * 1e3);
    println!(
        "throughput:         {:.2e} interactions/s",
        out.interactions as f64 / elapsed.as_secs_f64()
    );
    println!(
        "\n(a sequential per-interaction simulator at ~150M interactions/s would need ~{:.0} s)",
        out.interactions as f64 / 150e6
    );
}
