//! Quickstart: estimate `log2 n` with the paper's uniform leaderless
//! protocol, through the unified `Simulation` builder.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Every experiment in this repository is the same sentence — run
//! protocol P on n agents from configuration C under engine E until
//! predicate Q, observing metrics M — and the builder is that sentence as
//! code. The convenience wrapper `estimate_log_size(n, seed, None)` does
//! exactly what the explicit builder below does.

use uniform_sizeest::engine::Simulation;
use uniform_sizeest::protocols::log_size::{
    default_time_budget, is_converged_counts, FieldMaxima, LogSizeEstimation,
};
use uniform_sizeest::protocols::state::MainState;

fn main() {
    let n = 1000u64;
    let seed = 42;
    println!("Running Log-Size-Estimation on a population of n = {n} agents (seed {seed})...");
    println!("No agent ever learns n; each starts in the identical state X.\n");

    // FieldMaxima is an Observer: at every checkpoint it absorbs the
    // occupied states, giving the Lemma 3.9 state-bound empirics for free.
    let mut maxima = FieldMaxima::default();
    let mut support_peak = 0usize;
    let (outcome, k) = {
        let (outcome, sim) = Simulation::builder(LogSizeEstimation::paper())
            .size(n)
            .seed(seed)
            .max_time(default_time_budget(n))
            .observe(&mut maxima)
            .observe_with(|_time, _interactions, view: &[(MainState, u64)]| {
                support_peak = support_peak.max(view.len());
            })
            .until(|view: &[(MainState, u64)]| is_converged_counts(view))
            .run();
        let k = sim.view()[0].0.output.expect("converged run has an output");
        (outcome, k)
    };

    let logn = (n as f64).log2();
    println!("converged:        {}", outcome.converged);
    println!(
        "parallel time:    {:.0}  (Theorem 3.1: O(log^2 n))",
        outcome.time
    );
    println!("estimate k:       {k}");
    println!("true log2(n):     {logn:.3}");
    println!(
        "additive error:   {:+.3}  (Theorem 3.1 band: +-5.7; in practice within 2)",
        k as f64 - logn
    );
    println!(
        "implied size 2^k: {}  (true n = {n})",
        2u64.saturating_pow(k as u32)
    );
    println!("\nObserved field maxima (Lemma 3.9's O(log^4 n) state bound):");
    println!(
        "  logSize2 {} | gr {} | time {} | epoch {} | sum {}",
        maxima.log_size2, maxima.gr, maxima.time, maxima.epoch, maxima.sum
    );
    println!(
        "  => roughly {} reachable states per agent; peak occupied support {}",
        maxima.state_count_estimate(),
        support_peak
    );
}
