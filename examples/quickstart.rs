//! Quickstart: estimate `log2 n` with the paper's uniform leaderless
//! protocol.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use uniform_sizeest::protocols::log_size::estimate_log_size;

fn main() {
    let n = 1000;
    let seed = 42;
    println!("Running Log-Size-Estimation on a population of n = {n} agents (seed {seed})...");
    println!("No agent ever learns n; each starts in the identical state X.\n");

    let outcome = estimate_log_size(n, seed, None);

    let logn = (n as f64).log2();
    let k = outcome.output.expect("converged run always has an output");
    println!("converged:        {}", outcome.converged);
    println!(
        "parallel time:    {:.0}  (Theorem 3.1: O(log^2 n))",
        outcome.time
    );
    println!("estimate k:       {k}");
    println!("true log2(n):     {logn:.3}");
    println!(
        "additive error:   {:+.3}  (Theorem 3.1 band: +-5.7; in practice within 2)",
        k as f64 - logn
    );
    println!(
        "implied size 2^k: {}  (true n = {n})",
        2u64.saturating_pow(k as u32)
    );
    println!("\nObserved field maxima (Lemma 3.9's O(log^4 n) state bound):");
    let m = outcome.maxima;
    println!(
        "  logSize2 {} | gr {} | time {} | epoch {} | sum {}",
        m.log_size2, m.gr, m.time, m.epoch, m.sum
    );
    println!(
        "  => roughly {} reachable states per agent",
        m.state_count_estimate()
    );
}
