//! The estimator landscape: multiplicative vs additive vs exact.
//!
//! Runs the Alistarh et al. weak estimator, this paper's protocol, the
//! probability-1 upper-bound variant and the exact `l_i/f_i` backup on the
//! same population and compares errors and costs.
//!
//! ```sh
//! cargo run --release --example estimator_comparison
//! ```

use uniform_sizeest::baselines::alistarh::weak_estimate;
use uniform_sizeest::baselines::exact_backup::run_backup;
use uniform_sizeest::protocols::log_size::estimate_log_size;
use uniform_sizeest::protocols::upper_bound::estimate_upper_bound;

fn main() {
    let n = 2000u64;
    let logn = (n as f64).log2();
    println!("Population n = {n}, log2 n = {logn:.3}\n");

    let weak = weak_estimate(n as usize, 1);
    println!("[weak, Alistarh et al. [2]]  k = {:2}   err {:+.2}   time {:>8.1}   (band: [log n - log ln n, 2 log n])",
        weak.estimate, weak.estimate as f64 - logn, weak.time);

    let main = estimate_log_size(n as usize, 2, None);
    let k = main.output.unwrap();
    println!("[this paper, Thm 3.1]        k = {k:2}   err {:+.2}   time {:>8.1}   (band: +-5.7 additive)",
        k as f64 - logn, main.time);

    let ub = estimate_upper_bound(n as usize, 3, 10.0 * n as f64);
    println!("[prob-1 upper bound, §3.3]   k = {:2}   err {:+.2}   time {:>8.1}   (guarantee: k >= log n always)",
        ub.report, ub.report as f64 - logn, ub.fast_time);

    let backup = run_backup(n, 4);
    println!("[exact l/f backup, §3.3]     k = {:2}   err {:+.2}   time {:>8.1}   (exactly floor(log n), O(n) time)",
        backup.max_level, backup.max_level as f64 - logn, backup.silent_time);

    println!("\nThe trade-off the paper charts:");
    println!("  weak:   O(log n) time but the error grows with n (multiplicative)");
    println!("  paper:  O(log^2 n) time, error <= 5.7 forever (additive)");
    println!("  exact:  error 0, but Omega(n) time — exponentially slower");
    assert!(ub.report as f64 >= logn, "probability-1 guarantee violated");
}
