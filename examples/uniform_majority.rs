//! Uniformizing a nonuniform protocol with the paper's composition scheme
//! (§1.1).
//!
//! The cancellation/doubling majority protocol needs `Θ(log n)` synchronized
//! stages, so the literature hands every agent `⌊log n⌋` at initialization
//! (the paper's Figure 1). The composition framework removes that: a weak
//! uniform size estimate paces a leaderless phase clock, and everything
//! restarts whenever the estimate improves.
//!
//! ```sh
//! cargo run --release --example uniform_majority
//! ```

use uniform_sizeest::baselines::majority::{run_nonuniform_majority, run_uniform_majority};

fn main() {
    let n = 500;
    let ones = 300; // 60% majority for opinion 1
    println!(
        "Majority on n = {n} agents, {ones} hold opinion 1, {} hold opinion 0\n",
        n - ones
    );

    println!(
        "[nonuniform reference] every agent initialized with floor(log2 n) = {}",
        (n as f64).log2().floor()
    );
    let non = run_nonuniform_majority(n, ones, 7, 1e8);
    println!(
        "  winner: {:?}   time: {:.0}   converged: {}",
        non.winner, non.time, non.converged
    );

    println!("\n[uniformized via the paper's composition] no agent ever sees n:");
    println!("  stage clock = leaderless phase clock on a weak size estimate,");
    println!("  full restart whenever the estimate improves");
    let uni = run_uniform_majority(n, ones, 8, 1e8);
    println!(
        "  winner: {:?}   time: {:.0}   converged: {}",
        uni.winner, uni.time, uni.converged
    );

    println!("\noverhead factor: {:.2}x", uni.time / non.time);
    assert_eq!(non.winner, Some(1));
    assert_eq!(uni.winner, Some(1));
    println!("both agree: opinion 1 wins — the composition preserved correctness.");
}
