//! Theorem 3.13: terminating size estimation with one initial leader.
//!
//! The leader runs the ordinary protocol plus a private interaction clock
//! paced by the settled `logSize2`; when it fires — after convergence,
//! w.h.p. — a termination flag spreads by epidemic and freezes the
//! population with the estimate in place.
//!
//! ```sh
//! cargo run --release --example leader_terminating
//! ```

use uniform_sizeest::protocols::leader::run_terminating;
use uniform_sizeest::protocols::log_size::estimate_log_size;

fn main() {
    let n = 300;
    let logn = (n as f64).log2();
    println!("Terminating size estimation, n = {n} (log2 n = {logn:.2}), one planted leader\n");

    // Reference: how long does plain convergence take?
    let conv = estimate_log_size(n, 11, None);
    println!(
        "plain protocol converges at t = {:.0} with estimate {:?} (but no agent knows it's done)",
        conv.time, conv.output
    );

    let out = run_terminating(n, 12, 1e8);
    assert!(out.terminated, "leader failed to terminate in budget");
    println!(
        "\nleader fires the termination signal at t = {:.0}",
        out.termination_time
    );
    println!(
        "every agent frozen by            t = {:.0}",
        out.all_frozen_time
    );
    println!(
        "estimate at the freeze: {:?} (err {:+.2}), agreement {:.1}%",
        out.output,
        out.output.unwrap() as f64 - logn,
        out.agreement * 100.0
    );
    println!(
        "\nsafety margin: signal at {:.1}x the typical convergence time",
        out.termination_time / conv.time
    );
    println!("Theorem 4.1 context: without the leader (dense start) this is impossible —");
    println!("any such signal would fire at O(1) time with constant probability.");
}
