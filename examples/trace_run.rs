//! Watch one `Log-Size-Estimation` run unfold: the `logSize2` epidemic
//! settling (with restarts), the epoch front marching to `5·logSize2`, and
//! outputs appearing.
//!
//! ```sh
//! cargo run --release --example trace_run
//! ```

use uniform_sizeest::protocols::trace::run_with_trace;

fn main() {
    let n = 400;
    println!(
        "Tracing Log-Size-Estimation on n = {n} (log2 n = {:.2})\n",
        (n as f64).log2()
    );
    let (trace, converged) = run_with_trace(n, 2024, 500.0, 1e7);
    assert!(converged);

    println!(
        "{:>9}  {:>8}  {:>7}  {:>10}  {:>10}  {:>6}  {:>7}",
        "time", "logSize2", "settled", "min_epoch", "max_epoch", "done%", "outputs"
    );
    // Print ~25 evenly spaced rows plus the last.
    let pts = trace.points();
    let stride = (pts.len() / 25).max(1);
    for (i, p) in pts.iter().enumerate() {
        if i % stride != 0 && i != pts.len() - 1 {
            continue;
        }
        let s = p.value;
        println!(
            "{:>9.0}  {:>8}  {:>7}  {:>10}  {:>10}  {:>6.1}  {:>7}",
            p.time,
            s.log_size2,
            if s.log_size2_settled { "yes" } else { "no" },
            s.min_epoch,
            s.max_epoch,
            s.done_fraction * 100.0,
            s.distinct_outputs,
        );
    }
    let last = trace.last().unwrap();
    let target = 5 * last.value.log_size2;
    println!(
        "\nconverged at t = {:.0}: epoch target 5·logSize2 = {target}, one common output",
        last.time
    );
    println!("visible structure: logSize2 settles first (restarts while it rises),");
    println!("then the epoch front climbs one epidemic at a time — the paper's §3.1 narrative.");
}
