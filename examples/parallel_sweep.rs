//! Programmatic sweep quickstart: the epidemic grid of `table_epidemic`,
//! built in code instead of a spec file.
//!
//! ```text
//! cargo run --release --example parallel_sweep
//! ```
//!
//! Demonstrates the `pp-sweep` contract: trials fan out over all cores
//! with per-trial seeds derived from the master seed and the grid
//! coordinates, so this prints the *same numbers* at any thread count —
//! re-run with `spec.threads = 1` to check.

use pp_sweep::{emit, run_sweep, SweepExperiment, SweepSpec};

fn main() {
    let mut spec = SweepSpec::new("parallel_sweep", vec![10_000, 100_000, 1_000_000], 16);
    spec.master_seed = 2019; // PODC 2019 — one seed reproduces the sweep
    let experiments = vec![
        SweepExperiment::new("epidemic", &["time"], |ctx| {
            vec![pp_engine::epidemic::epidemic_completion_time_with(
                ctx.n, ctx.seed, ctx.engine,
            )]
        }),
        SweepExperiment::new("epidemic_sub3", &["time"], |ctx| {
            vec![pp_engine::epidemic::subpopulation_epidemic_time_with(
                ctx.n,
                ctx.n / 3,
                ctx.seed,
                ctx.engine,
            )]
        }),
    ];
    let report = run_sweep(&spec, &experiments).expect("sweep runs");

    println!("{}", emit::SUMMARY_HEADER.join("  "));
    for row in emit::summary_rows(&report) {
        println!("{}", row.join("  "));
    }
    for point in report.points_for("epidemic") {
        let s = point.summary("time");
        println!(
            "epidemic n = {:>8}: mean {:.2} ≈ 2 ln n = {:.2} (ratio {:.2})",
            point.n,
            s.mean,
            2.0 * (point.n as f64).ln(),
            s.mean / (2.0 * (point.n as f64).ln())
        );
    }
}
