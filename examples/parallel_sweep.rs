//! Programmatic sweep quickstart: the epidemic grid of `table_epidemic`,
//! built in code instead of a spec file.
//!
//! ```text
//! cargo run --release --example parallel_sweep
//! ```
//!
//! Demonstrates the `pp-sweep` contract: trials fan out over all cores
//! with per-trial seeds derived from the master seed and the grid
//! coordinates, so this prints the *same numbers* at any thread count —
//! re-run with `spec.threads = 1` to check.

use pp_engine::epidemic::{InfectionEpidemic, SubState, SubpopulationEpidemic};
use pp_engine::simulation::{count_of, Simulation};
use pp_sweep::{emit, run_sweep, SweepExperiment, SweepSpec};

fn main() {
    let mut spec = SweepSpec::new("parallel_sweep", vec![10_000, 100_000, 1_000_000], 16);
    spec.master_seed = 2019; // PODC 2019 — one seed reproduces the sweep
    let experiments = vec![
        SweepExperiment::new("epidemic", &["time"], |ctx| {
            let n = ctx.n;
            let (out, _) = Simulation::count_builder(InfectionEpidemic)
                .config([(false, n - 1), (true, 1)])
                .seed(ctx.seed)
                .mode(ctx.engine) // the sweep's engine policy, straight into the builder
                .check_every((n / 10).max(1))
                .until(move |view| count_of(view, &true) == n)
                .run();
            vec![out.time]
        }),
        SweepExperiment::new("epidemic_sub3", &["time"], |ctx| {
            let (n, a) = (ctx.n, ctx.n / 3);
            let inf = SubState {
                member: true,
                infected: true,
            };
            let sus = SubState {
                member: true,
                infected: false,
            };
            let out_ = SubState {
                member: false,
                infected: false,
            };
            let (out, _) = Simulation::count_builder(SubpopulationEpidemic)
                .config([(inf, 1), (sus, a - 1), (out_, n - a)])
                .seed(ctx.seed)
                .mode(ctx.engine)
                .check_every((n / 10).max(1))
                .until(move |view| count_of(view, &inf) == a)
                .run();
            vec![out.time]
        }),
    ];
    let report = run_sweep(&spec, &experiments).expect("sweep runs");

    println!("{}", emit::SUMMARY_HEADER.join("  "));
    for row in emit::summary_rows(&report) {
        println!("{}", row.join("  "));
    }
    for point in report.points_for("epidemic") {
        let s = point.summary("time");
        println!(
            "epidemic n = {:>8}: mean {:.2} ≈ 2 ln n = {:.2} (ratio {:.2})",
            point.n,
            s.mean,
            2.0 * (point.n as f64).ln(),
            s.mean / (2.0 * (point.n as f64).ln())
        );
    }
}
